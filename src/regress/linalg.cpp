#include "regress/linalg.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace rtdrm::regress {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    m(i, i) = 1.0;
  }
  return m;
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  RTDRM_ASSERT(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  RTDRM_ASSERT(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      t(c, r) = (*this)(r, c);
    }
  }
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  RTDRM_ASSERT(cols_ == rhs.rows_);
  Matrix out(rows_, rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) {
        continue;
      }
      for (std::size_t j = 0; j < rhs.cols_; ++j) {
        out(i, j) += aik * rhs(k, j);
      }
    }
  }
  return out;
}

Vector Matrix::operator*(const Vector& v) const {
  RTDRM_ASSERT(cols_ == v.size());
  Vector out(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) {
      acc += (*this)(i, j) * v[j];
    }
    out[i] = acc;
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  RTDRM_ASSERT(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] += rhs.data_[i];
  }
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  RTDRM_ASSERT(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] -= rhs.data_[i];
  }
  return out;
}

double Matrix::maxAbsDiff(const Matrix& other) const {
  RTDRM_ASSERT(rows_ == other.rows_ && cols_ == other.cols_);
  double worst = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    worst = std::max(worst, std::abs(data_[i] - other.data_[i]));
  }
  return worst;
}

Vector solveGaussian(Matrix a, Vector b) {
  const std::size_t n = a.rows();
  RTDRM_ASSERT(a.cols() == n && b.size() == n);
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a(r, col)) > std::abs(a(pivot, col))) {
        pivot = r;
      }
    }
    RTDRM_ASSERT_MSG(std::abs(a(pivot, col)) > 1e-12,
                     "solveGaussian: singular matrix");
    if (pivot != col) {
      for (std::size_t c = col; c < n; ++c) {
        std::swap(a(pivot, c), a(col, c));
      }
      std::swap(b[pivot], b[col]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a(r, col) / a(col, col);
      if (f == 0.0) {
        continue;
      }
      for (std::size_t c = col; c < n; ++c) {
        a(r, c) -= f * a(col, c);
      }
      b[r] -= f * b[col];
    }
  }
  // Back substitution.
  Vector x(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = b[ii];
    for (std::size_t c = ii + 1; c < n; ++c) {
      acc -= a(ii, c) * x[c];
    }
    x[ii] = acc / a(ii, ii);
  }
  return x;
}

Matrix choleskyLower(const Matrix& a) {
  const std::size_t n = a.rows();
  RTDRM_ASSERT(a.cols() == n);
  Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double acc = a(i, j);
      for (std::size_t k = 0; k < j; ++k) {
        acc -= l(i, k) * l(j, k);
      }
      if (i == j) {
        RTDRM_ASSERT_MSG(acc > 0.0, "choleskyLower: matrix not SPD");
        l(i, i) = std::sqrt(acc);
      } else {
        l(i, j) = acc / l(j, j);
      }
    }
  }
  return l;
}

Vector solveCholesky(const Matrix& a, const Vector& b) {
  const std::size_t n = a.rows();
  RTDRM_ASSERT(b.size() == n);
  const Matrix l = choleskyLower(a);
  // Forward solve L y = b.
  Vector y(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t k = 0; k < i; ++k) {
      acc -= l(i, k) * y[k];
    }
    y[i] = acc / l(i, i);
  }
  // Back solve L^T x = y.
  Vector x(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) {
      acc -= l(k, ii) * x[k];
    }
    x[ii] = acc / l(ii, ii);
  }
  return x;
}

Vector solveLeastSquaresQR(Matrix a, Vector b) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  RTDRM_ASSERT(m >= n && b.size() == m);

  // In-place Householder QR: apply each reflector to A and b.
  for (std::size_t k = 0; k < n; ++k) {
    // Build the reflector for column k below the diagonal.
    double norm = 0.0;
    for (std::size_t i = k; i < m; ++i) {
      norm += a(i, k) * a(i, k);
    }
    norm = std::sqrt(norm);
    RTDRM_ASSERT_MSG(norm > 1e-12,
                     "solveLeastSquaresQR: rank-deficient design matrix");
    const double alpha = a(k, k) >= 0.0 ? -norm : norm;
    Vector v(m - k, 0.0);
    v[0] = a(k, k) - alpha;
    for (std::size_t i = k + 1; i < m; ++i) {
      v[i - k] = a(i, k);
    }
    const double vnorm2 = dot(v, v);
    if (vnorm2 <= 1e-300) {
      continue;  // column already triangular
    }
    // Apply H = I - 2 v v^T / (v^T v) to the trailing submatrix of A.
    for (std::size_t c = k; c < n; ++c) {
      double proj = 0.0;
      for (std::size_t i = k; i < m; ++i) {
        proj += v[i - k] * a(i, c);
      }
      const double f = 2.0 * proj / vnorm2;
      for (std::size_t i = k; i < m; ++i) {
        a(i, c) -= f * v[i - k];
      }
    }
    // ... and to b.
    double proj = 0.0;
    for (std::size_t i = k; i < m; ++i) {
      proj += v[i - k] * b[i];
    }
    const double f = 2.0 * proj / vnorm2;
    for (std::size_t i = k; i < m; ++i) {
      b[i] -= f * v[i - k];
    }
  }
  // Back substitution on the upper-triangular R (top n x n of A).
  Vector x(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = b[ii];
    for (std::size_t c = ii + 1; c < n; ++c) {
      acc -= a(ii, c) * x[c];
    }
    RTDRM_ASSERT(std::abs(a(ii, ii)) > 1e-12);
    x[ii] = acc / a(ii, ii);
  }
  return x;
}

double dot(const Vector& a, const Vector& b) {
  RTDRM_ASSERT(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += a[i] * b[i];
  }
  return acc;
}

double norm2(const Vector& v) { return std::sqrt(dot(v, v)); }

}  // namespace rtdrm::regress
