#include "regress/rls.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace rtdrm::regress {

RecursiveLeastSquares::RecursiveLeastSquares(std::size_t dim, double lambda,
                                             double initial_p)
    : theta_(dim, 0.0),
      p_(dim, dim, 0.0),
      lambda_(lambda),
      initial_p_(initial_p) {
  RTDRM_ASSERT(dim >= 1);
  RTDRM_ASSERT(lambda > 0.0 && lambda <= 1.0);
  RTDRM_ASSERT(initial_p > 0.0);
  resetCovariance();
  resets_ = 0;  // the constructor's init is not a corruption recovery
}

void RecursiveLeastSquares::resetCovariance() {
  const std::size_t d = theta_.size();
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      p_(i, j) = i == j ? initial_p_ : 0.0;
    }
  }
  ++resets_;
}

void RecursiveLeastSquares::seed(const Vector& theta) {
  RTDRM_ASSERT(theta.size() == theta_.size());
  theta_ = theta;
}

double RecursiveLeastSquares::predict(const Vector& x) const {
  return dot(theta_, x);
}

void RecursiveLeastSquares::update(const Vector& x, double y) {
  const std::size_t d = theta_.size();
  RTDRM_ASSERT(x.size() == d);
  ++n_;

  // px = P x
  Vector px(d, 0.0);
  auto computePx = [&] {
    for (std::size_t i = 0; i < d; ++i) {
      double acc = 0.0;
      for (std::size_t j = 0; j < d; ++j) {
        acc += p_(i, j) * x[j];
      }
      px[i] = acc;
    }
  };
  computePx();
  double denom = lambda_ + dot(x, px);
  if (!(denom > 0.0) || !std::isfinite(denom)) {
    // Accumulated rounding drove P indefinite (possible after very long
    // runs with poorly exciting features): self-heal by re-initializing
    // the covariance. The coefficient estimate theta is kept.
    resetCovariance();
    computePx();
    denom = lambda_ + dot(x, px);
  }
  RTDRM_ASSERT(denom > 0.0);

  // Gain and coefficient update.
  const double err = y - dot(theta_, x);
  for (std::size_t i = 0; i < d; ++i) {
    theta_[i] += px[i] / denom * err;
  }

  // P <- (P - (P x)(x^T P) / denom) / lambda. P stays symmetric; compute
  // the outer-product downdate directly from px.
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      p_(i, j) = (p_(i, j) - px[i] * px[j] / denom) / lambda_;
    }
  }

  // Numerical hygiene, both classic RLS failure modes:
  //  * enforce symmetry (the update is symmetric in exact arithmetic but
  //    rounding drifts the halves apart and eventually breaks
  //    positive-definiteness);
  //  * cap the covariance (with lambda < 1, directions the data never
  //    excites grow as 1/lambda per step — covariance wind-up — and would
  //    overflow). Rescaling the whole matrix preserves SPD.
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = i + 1; j < d; ++j) {
      const double avg = 0.5 * (p_(i, j) + p_(j, i));
      p_(i, j) = avg;
      p_(j, i) = avg;
    }
  }
  constexpr double kDiagCap = 1e12;
  double max_diag = 0.0;
  for (std::size_t i = 0; i < d; ++i) {
    max_diag = std::max(max_diag, p_(i, i));
  }
  if (max_diag > kDiagCap) {
    const double s = kDiagCap / max_diag;
    for (std::size_t i = 0; i < d; ++i) {
      for (std::size_t j = 0; j < d; ++j) {
        p_(i, j) *= s;
      }
    }
  }
}

}  // namespace rtdrm::regress
