// The paper's execution-latency regression model (eq. 3):
//
//   eex(st, d, u) = (a1 u^2 + a2 u + a3) d^2 + (b1 u^2 + b2 u + b3) d
//
// with d in hundreds of data items and u the CPU utilization fraction.
// Two fitting strategies are provided:
//
//  * Two-stage (the paper's §4.2.1.1 procedure, Figs. 2-4): for each
//    profiled utilization level fit latency ~ c2 d^2 + c1 d (the red "Y"
//    curves), then fit c2(u) and c1(u) as quadratics in u (yielding the
//    green "Y-" surface).
//  * Joint: one 6-column least-squares over all samples at once.
//
// Both return the same model type; bench_ablation compares them.
#pragma once

#include <optional>
#include <vector>

#include "common/units.hpp"
#include "regress/least_squares.hpp"

namespace rtdrm::regress {

/// One profiled observation of a subtask's execution latency.
struct ExecSample {
  double d_hundreds = 0.0;  ///< data size, hundreds of tracks
  double u = 0.0;           ///< CPU utilization fraction in [0, 1)
  double latency_ms = 0.0;  ///< observed latency
};

/// Coefficients of eq. (3). Evaluation clamps at zero: a fitted quadratic
/// can dip below zero outside the profiled region, and a negative latency
/// forecast is never meaningful.
struct ExecLatencyModel {
  double a1 = 0.0, a2 = 0.0, a3 = 0.0;  ///< d^2 coefficient's u-quadratic
  double b1 = 0.0, b2 = 0.0, b3 = 0.0;  ///< d   coefficient's u-quadratic

  double quadCoeff(double u) const { return (a1 * u + a2) * u + a3; }
  double linCoeff(double u) const { return (b1 * u + b2) * u + b3; }

  double evalMs(double d_hundreds, double u) const {
    const double v =
        quadCoeff(u) * d_hundreds * d_hundreds + linCoeff(u) * d_hundreds;
    return v > 0.0 ? v : 0.0;
  }
  SimDuration eval(DataSize d, Utilization u) const {
    return SimDuration::millis(evalMs(d.hundreds(), u.value()));
  }
};

/// Per-utilization-level quadratic fit (the "Y" curves of Figs. 2 and 3).
struct LevelFit {
  double u = 0.0;
  double c2 = 0.0;  ///< d^2 coefficient at this level
  double c1 = 0.0;  ///< d coefficient at this level
  FitDiagnostics diagnostics;

  double evalMs(double d_hundreds) const {
    const double v = c2 * d_hundreds * d_hundreds + c1 * d_hundreds;
    return v > 0.0 ? v : 0.0;
  }
};

struct ExecModelFit {
  ExecLatencyModel model;
  /// Diagnostics of the final model against all samples.
  FitDiagnostics diagnostics;
  /// Per-level fits (two-stage only; empty for the joint fit).
  std::vector<LevelFit> levels;
};

/// Fit latency ~ c2 d^2 + c1 d over samples that share one utilization level.
LevelFit fitLevel(const std::vector<ExecSample>& samples);

/// The paper's two-stage procedure. Requires at least three distinct
/// utilization levels (each with >= 2 distinct data sizes); levels are
/// grouped with the given tolerance on u.
ExecModelFit fitExecModelTwoStage(const std::vector<ExecSample>& samples,
                                  double u_tolerance = 1e-3);

/// Direct 6-parameter joint least squares over all samples.
ExecModelFit fitExecModelJoint(const std::vector<ExecSample>& samples);

/// K-fold cross-validation of an eq.-3 fit: how well does the model
/// predict *held-out* observations? Folds are stratified by utilization
/// level so every training set retains all levels (the two-stage fit
/// needs them).
struct CrossValidation {
  double mean_rmse = 0.0;     ///< mean held-out RMSE across folds
  double mean_r_squared = 0.0;
  std::vector<double> fold_rmse;
};

CrossValidation crossValidateExecModel(const std::vector<ExecSample>& samples,
                                       std::size_t folds = 5,
                                       bool two_stage = true);

}  // namespace rtdrm::regress
