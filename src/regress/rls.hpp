// Recursive least squares with exponential forgetting.
//
// The paper fits eq. (3) once, offline, from a profiling campaign. Its
// related work ([BN+98, RSYJ97]) argues for refining models from run-time
// observations; rtdrm's ModelRefresher does that with this RLS engine: each
// observed (features, response) pair updates the coefficient estimate in
// O(p^2) without storing history, and a forgetting factor < 1 lets the
// model track environmental drift (e.g. the application's per-track cost
// changing mid-mission).
//
// Standard formulation: with gain k = P x / (lambda + x^T P x),
//   theta <- theta + k (y - x^T theta)
//   P     <- (P - k x^T P) / lambda
#pragma once

#include <cstddef>
#include <cstdint>

#include "regress/linalg.hpp"

namespace rtdrm::regress {

class RecursiveLeastSquares {
 public:
  /// `dim` features; `lambda` in (0, 1]: 1 = ordinary RLS (converges to the
  /// batch OLS solution), < 1 discounts old observations with time constant
  /// ~ 1/(1-lambda) samples. `initial_p` scales the prior covariance: large
  /// values mean "no confidence in the zero prior".
  explicit RecursiveLeastSquares(std::size_t dim, double lambda = 1.0,
                                 double initial_p = 1e6);

  /// Seeds the estimate (e.g. with offline-fitted coefficients) while
  /// keeping the covariance prior.
  void seed(const Vector& theta);

  /// One observation: response `y` at feature vector `x` (size dim).
  void update(const Vector& x, double y);

  const Vector& coefficients() const { return theta_; }
  double predict(const Vector& x) const;
  std::size_t dim() const { return theta_.size(); }
  std::size_t observations() const { return n_; }
  double forgettingFactor() const { return lambda_; }

  /// Times the covariance had to be re-initialized after numerical
  /// corruption (diagnostic; zero in well-conditioned use).
  std::uint64_t covarianceResets() const { return resets_; }

 private:
  void resetCovariance();

  Vector theta_;
  Matrix p_;  // inverse-covariance proxy
  double lambda_;
  double initial_p_;
  std::size_t n_ = 0;
  std::uint64_t resets_ = 0;
};

}  // namespace rtdrm::regress
