// The paper's communication-delay model (eqs. 4-6):
//
//   ecd(m, d, c) = Dbuf(d, c) + Dtrans(d)
//   Dbuf(d, c)   = k * sum_i ds(T_i, c)      (linear regression, eq. 5)
//   Dtrans(d)    = d / ls                    (eq. 6)
//
// Dbuf captures how long data waits in host/network buffers; the paper
// found a simple linear dependence on the *total* periodic workload, with
// slope k = 0.7 (Table 3). Dtrans is pure serialization at the link rate.
#pragma once

#include <vector>

#include "common/units.hpp"
#include "regress/least_squares.hpp"

namespace rtdrm::regress {

/// One profiled observation of message buffering delay.
struct CommSample {
  /// Total periodic workload across all tasks during the period, in
  /// hundreds of tracks (the sum in eq. 5).
  double total_workload_hundreds = 0.0;
  double buffer_delay_ms = 0.0;
};

/// Eq. (5): Dbuf = k * (total periodic workload).
struct BufferDelayModel {
  double k_ms_per_hundred = 0.7;  ///< Table 3 default

  double evalMs(double total_workload_hundreds) const {
    const double v = k_ms_per_hundred * total_workload_hundreds;
    return v > 0.0 ? v : 0.0;
  }
  SimDuration eval(DataSize total_workload) const {
    return SimDuration::millis(evalMs(total_workload.hundreds()));
  }
};

struct BufferDelayFit {
  BufferDelayModel model;
  FitDiagnostics diagnostics;
};

/// Fit the buffer-delay slope through the origin (no constant: an idle
/// network buffers nothing).
BufferDelayFit fitBufferDelay(const std::vector<CommSample>& samples);

/// Eqs. (4)-(6) combined.
struct CommDelayModel {
  BufferDelayModel buffer;
  BitRate link_rate = BitRate::mbps(100.0);
  /// Wire bytes per payload byte (framing overhead); 1.0 reproduces the
  /// paper's bare d/ls.
  double overhead_factor = 1.0;

  /// Eq. (6).
  SimDuration transmission(Bytes payload) const {
    return link_rate.transmissionTime(payload * overhead_factor);
  }
  /// Eq. (4).
  SimDuration eval(Bytes payload, DataSize total_workload) const {
    return buffer.eval(total_workload) + transmission(payload);
  }
};

}  // namespace rtdrm::regress
