#include "regress/exec_model.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/assert.hpp"

namespace rtdrm::regress {

namespace {

FitDiagnostics diagnoseModel(const ExecLatencyModel& model,
                             const std::vector<ExecSample>& samples) {
  Vector y;
  Vector pred;
  y.reserve(samples.size());
  pred.reserve(samples.size());
  for (const auto& s : samples) {
    y.push_back(s.latency_ms);
    pred.push_back(model.evalMs(s.d_hundreds, s.u));
  }
  return diagnose(y, pred, 6);
}

}  // namespace

LevelFit fitLevel(const std::vector<ExecSample>& samples) {
  RTDRM_ASSERT_MSG(samples.size() >= 2, "need >= 2 samples per level");
  Vector x;
  Vector y;
  x.reserve(samples.size());
  y.reserve(samples.size());
  double u_sum = 0.0;
  for (const auto& s : samples) {
    x.push_back(s.d_hundreds);
    y.push_back(s.latency_ms);
    u_sum += s.u;
  }
  // No intercept: eq. (3) maps zero data to zero latency.
  const FitResult fit = fitPolynomial(x, y, 2, /*include_intercept=*/false);
  LevelFit out;
  out.u = u_sum / static_cast<double>(samples.size());
  out.c1 = fit.coefficients[0];
  out.c2 = fit.coefficients[1];
  out.diagnostics = fit.diagnostics;
  return out;
}

ExecModelFit fitExecModelTwoStage(const std::vector<ExecSample>& samples,
                                  double u_tolerance) {
  RTDRM_ASSERT(!samples.empty());
  // Group samples into utilization levels.
  std::map<long long, std::vector<ExecSample>> groups;
  const double inv_tol = 1.0 / std::max(u_tolerance, 1e-12);
  for (const auto& s : samples) {
    groups[static_cast<long long>(std::llround(s.u * inv_tol))].push_back(s);
  }
  RTDRM_ASSERT_MSG(groups.size() >= 3,
                   "two-stage fit needs >= 3 utilization levels");

  ExecModelFit out;
  Vector us;
  Vector c2s;
  Vector c1s;
  for (const auto& [key, group] : groups) {
    (void)key;
    LevelFit lf = fitLevel(group);
    us.push_back(lf.u);
    c2s.push_back(lf.c2);
    c1s.push_back(lf.c1);
    out.levels.push_back(std::move(lf));
  }

  // Stage 2: quadratic-in-u (with intercept) for each stage-1 coefficient.
  const FitResult fit_c2 = fitPolynomial(us, c2s, 2, true);
  const FitResult fit_c1 = fitPolynomial(us, c1s, 2, true);
  out.model.a3 = fit_c2.coefficients[0];
  out.model.a2 = fit_c2.coefficients[1];
  out.model.a1 = fit_c2.coefficients[2];
  out.model.b3 = fit_c1.coefficients[0];
  out.model.b2 = fit_c1.coefficients[1];
  out.model.b1 = fit_c1.coefficients[2];
  out.diagnostics = diagnoseModel(out.model, samples);
  return out;
}

ExecModelFit fitExecModelJoint(const std::vector<ExecSample>& samples) {
  RTDRM_ASSERT_MSG(samples.size() >= 6, "joint fit needs >= 6 samples");
  Matrix design(samples.size(), 6);
  Vector y(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double d = samples[i].d_hundreds;
    const double u = samples[i].u;
    const double d2 = d * d;
    design(i, 0) = u * u * d2;  // a1
    design(i, 1) = u * d2;      // a2
    design(i, 2) = d2;          // a3
    design(i, 3) = u * u * d;   // b1
    design(i, 4) = u * d;       // b2
    design(i, 5) = d;           // b3
    y[i] = samples[i].latency_ms;
  }
  const FitResult fit = fitDesignMatrix(design, y);
  ExecModelFit out;
  out.model.a1 = fit.coefficients[0];
  out.model.a2 = fit.coefficients[1];
  out.model.a3 = fit.coefficients[2];
  out.model.b1 = fit.coefficients[3];
  out.model.b2 = fit.coefficients[4];
  out.model.b3 = fit.coefficients[5];
  out.diagnostics = diagnoseModel(out.model, samples);
  return out;
}

CrossValidation crossValidateExecModel(const std::vector<ExecSample>& samples,
                                       std::size_t folds, bool two_stage) {
  RTDRM_ASSERT(folds >= 2);
  RTDRM_ASSERT(samples.size() >= folds * 2);

  // Stratify: within each utilization level, deal samples round-robin into
  // folds, so every training set keeps every level.
  std::map<long long, std::vector<std::size_t>> by_level;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    by_level[static_cast<long long>(std::llround(samples[i].u * 1e6))]
        .push_back(i);
  }
  std::vector<std::size_t> fold_of(samples.size(), 0);
  for (const auto& [level, idxs] : by_level) {
    (void)level;
    for (std::size_t j = 0; j < idxs.size(); ++j) {
      fold_of[idxs[j]] = j % folds;
    }
  }

  CrossValidation out;
  Vector all_y;
  Vector all_pred;
  for (std::size_t f = 0; f < folds; ++f) {
    std::vector<ExecSample> train;
    std::vector<ExecSample> test;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      (fold_of[i] == f ? test : train).push_back(samples[i]);
    }
    if (test.empty()) {
      continue;
    }
    const ExecModelFit fit = two_stage ? fitExecModelTwoStage(train)
                                       : fitExecModelJoint(train);
    Vector y;
    Vector pred;
    for (const auto& s : test) {
      y.push_back(s.latency_ms);
      pred.push_back(fit.model.evalMs(s.d_hundreds, s.u));
      all_y.push_back(y.back());
      all_pred.push_back(pred.back());
    }
    out.fold_rmse.push_back(diagnose(y, pred, 6).rmse);
  }
  const FitDiagnostics overall = diagnose(all_y, all_pred, 6);
  out.mean_r_squared = overall.r_squared;
  double acc = 0.0;
  for (double r : out.fold_rmse) {
    acc += r;
  }
  out.mean_rmse = acc / static_cast<double>(out.fold_rmse.size());
  return out;
}

}  // namespace rtdrm::regress
