#include "regress/comm_model.hpp"

#include "common/assert.hpp"

namespace rtdrm::regress {

BufferDelayFit fitBufferDelay(const std::vector<CommSample>& samples) {
  RTDRM_ASSERT(!samples.empty());
  Vector x;
  Vector y;
  x.reserve(samples.size());
  y.reserve(samples.size());
  for (const auto& s : samples) {
    x.push_back(s.total_workload_hundreds);
    y.push_back(s.buffer_delay_ms);
  }
  const FitResult fit = fitProportional(x, y);
  BufferDelayFit out;
  out.model.k_ms_per_hundred = fit.coefficients[0];
  out.diagnostics = fit.diagnostics;
  return out;
}

}  // namespace rtdrm::regress
