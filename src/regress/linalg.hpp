// Small dense linear algebra — just enough for least-squares regression.
//
// The regression problems in this system are tiny (design matrices of a few
// hundred rows by <= 6 columns), so a straightforward row-major dense
// implementation with partial pivoting / Householder QR is both adequate
// and easy to audit. No external BLAS/LAPACK dependency.
#pragma once

#include <cstddef>
#include <vector>

namespace rtdrm::regress {

using Vector = std::vector<double>;

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  Matrix transposed() const;
  Matrix operator*(const Matrix& rhs) const;
  Vector operator*(const Vector& v) const;
  Matrix operator+(const Matrix& rhs) const;
  Matrix operator-(const Matrix& rhs) const;

  /// Max |a_ij - b_ij|; both must have equal shape.
  double maxAbsDiff(const Matrix& other) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solve A x = b by Gaussian elimination with partial pivoting.
/// A must be square and non-singular (asserted via pivot magnitude).
Vector solveGaussian(Matrix a, Vector b);

/// Cholesky factorization of a symmetric positive-definite matrix; returns
/// the lower factor L with A = L L^T. Throws via assertion on non-SPD input.
Matrix choleskyLower(const Matrix& a);

/// Solve A x = b for SPD A via Cholesky.
Vector solveCholesky(const Matrix& a, const Vector& b);

/// Minimize ||A x - b||_2 via Householder QR (A: m >= n, full column rank).
/// More numerically robust than forming normal equations.
Vector solveLeastSquaresQR(Matrix a, Vector b);

/// Dot product; sizes must match.
double dot(const Vector& a, const Vector& b);

/// Euclidean norm.
double norm2(const Vector& v);

}  // namespace rtdrm::regress
