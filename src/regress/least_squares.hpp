// Ordinary least squares on explicit basis functions, with diagnostics.
//
// This is the "statistical regression theory" engine of the paper (§4.2.1):
// the exec-latency and buffer-delay models are fitted here from profile
// datasets.
#pragma once

#include <functional>
#include <vector>

#include "regress/linalg.hpp"

namespace rtdrm::regress {

/// Goodness-of-fit diagnostics for a fitted model.
struct FitDiagnostics {
  double r_squared = 0.0;   ///< 1 - SS_res / SS_tot (vs mean of y)
  double rmse = 0.0;        ///< sqrt(SS_res / n)
  double max_abs_residual = 0.0;
  std::size_t n_samples = 0;
  std::size_t n_params = 0;
};

struct FitResult {
  Vector coefficients;
  FitDiagnostics diagnostics;
};

/// Fit y ~ X beta by QR least squares, where row i of X is
/// [basis_0(x_i), basis_1(x_i), ...]. X is supplied pre-built.
FitResult fitDesignMatrix(const Matrix& design, const Vector& y);

/// Ridge-regularized variant (solves (X^T X + lambda I) beta = X^T y via
/// Cholesky). Useful when profile grids make columns nearly collinear.
FitResult fitRidge(const Matrix& design, const Vector& y, double lambda);

/// Fit a 1-D polynomial of the given degree: y ~ sum_k c_k x^k.
/// `include_intercept=false` drops the constant term (the paper's eq. 3 has
/// no intercept: zero data implies zero latency).
FitResult fitPolynomial(const Vector& x, const Vector& y, int degree,
                        bool include_intercept = true);

/// Evaluate a polynomial with coefficient layout matching fitPolynomial.
double evalPolynomial(const Vector& coeffs, double x, bool has_intercept);

/// Fit y = k * x through the origin (the paper's eq. 5 buffer-delay slope):
/// k = sum(x*y) / sum(x^2).
FitResult fitProportional(const Vector& x, const Vector& y);

/// Compute diagnostics for arbitrary predictions vs observations.
FitDiagnostics diagnose(const Vector& y, const Vector& predicted,
                        std::size_t n_params);

}  // namespace rtdrm::regress
