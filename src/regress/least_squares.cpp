#include "regress/least_squares.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace rtdrm::regress {

FitDiagnostics diagnose(const Vector& y, const Vector& predicted,
                        std::size_t n_params) {
  RTDRM_ASSERT(y.size() == predicted.size() && !y.empty());
  double mean_y = 0.0;
  for (double v : y) {
    mean_y += v;
  }
  mean_y /= static_cast<double>(y.size());

  double ss_res = 0.0;
  double ss_tot = 0.0;
  double worst = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    const double r = y[i] - predicted[i];
    ss_res += r * r;
    const double d = y[i] - mean_y;
    ss_tot += d * d;
    worst = std::max(worst, std::abs(r));
  }
  FitDiagnostics diag;
  diag.n_samples = y.size();
  diag.n_params = n_params;
  diag.rmse = std::sqrt(ss_res / static_cast<double>(y.size()));
  diag.max_abs_residual = worst;
  // Degenerate (constant) responses: define R^2 = 1 for a perfect fit.
  diag.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot
                                : (ss_res == 0.0 ? 1.0 : 0.0);
  return diag;
}

FitResult fitDesignMatrix(const Matrix& design, const Vector& y) {
  RTDRM_ASSERT(design.rows() == y.size());
  RTDRM_ASSERT(design.rows() >= design.cols());
  Vector beta = solveLeastSquaresQR(design, y);
  const Vector predicted = design * beta;
  FitResult out{std::move(beta), diagnose(y, predicted, design.cols())};
  return out;
}

FitResult fitRidge(const Matrix& design, const Vector& y, double lambda) {
  RTDRM_ASSERT(design.rows() == y.size());
  RTDRM_ASSERT(lambda >= 0.0);
  const Matrix xt = design.transposed();
  Matrix gram = xt * design;
  for (std::size_t i = 0; i < gram.rows(); ++i) {
    gram(i, i) += lambda;
  }
  const Vector rhs = xt * y;
  Vector beta = solveCholesky(gram, rhs);
  const Vector predicted = design * beta;
  FitResult out{std::move(beta), diagnose(y, predicted, design.cols())};
  return out;
}

FitResult fitPolynomial(const Vector& x, const Vector& y, int degree,
                        bool include_intercept) {
  RTDRM_ASSERT(x.size() == y.size() && !x.empty());
  RTDRM_ASSERT(degree >= 0);
  const int lowest = include_intercept ? 0 : 1;
  RTDRM_ASSERT(degree >= lowest);
  const auto n_terms = static_cast<std::size_t>(degree - lowest + 1);
  Matrix design(x.size(), n_terms);
  for (std::size_t i = 0; i < x.size(); ++i) {
    double p = include_intercept ? 1.0 : x[i];
    for (std::size_t j = 0; j < n_terms; ++j) {
      design(i, j) = p;
      p *= x[i];
    }
  }
  return fitDesignMatrix(design, y);
}

double evalPolynomial(const Vector& coeffs, double x, bool has_intercept) {
  double acc = 0.0;
  double p = has_intercept ? 1.0 : x;
  for (double c : coeffs) {
    acc += c * p;
    p *= x;
  }
  return acc;
}

FitResult fitProportional(const Vector& x, const Vector& y) {
  RTDRM_ASSERT(x.size() == y.size() && !x.empty());
  double sxy = 0.0;
  double sxx = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxy += x[i] * y[i];
    sxx += x[i] * x[i];
  }
  RTDRM_ASSERT_MSG(sxx > 0.0, "fitProportional: all-zero regressor");
  const double k = sxy / sxx;
  Vector predicted(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    predicted[i] = k * x[i];
  }
  return FitResult{Vector{k}, diagnose(y, predicted, 1)};
}

}  // namespace rtdrm::regress
