#include "node/processor.hpp"

#include <algorithm>
#include <iterator>
#include <utility>

#include "common/assert.hpp"

namespace rtdrm::node {

void ProcessorConfig::validate() const {
  RTDRM_ASSERT_MSG(quantum > SimDuration::zero(),
                   "quantum must be positive");
  RTDRM_ASSERT_MSG(context_switch >= SimDuration::zero(),
                   "context switch must be non-negative");
  RTDRM_ASSERT_MSG(speed > 0.0, "speed must be positive");
}

Processor::Processor(sim::Simulator& simulator, ProcessorId id,
                     ProcessorConfig config)
    : sim_(simulator), id_(id), config_(config) {
  config_.validate();
  policy_ = makeSchedulerPolicy(config_.policy);
}

SchedContext Processor::schedContext() const {
  SchedContext ctx;
  ctx.now = sim_.now();
  ctx.quantum = config_.quantum;
  ctx.context_switch = config_.context_switch;
  if (running_) {
    ctx.stretch_len = stretch_len_;
    ctx.stretch_elapsed = sim_.now() - stretch_start_;
  }
  return ctx;
}

JobId Processor::submit(Job job) {
  RTDRM_ASSERT(job.demand >= SimDuration::zero());
  if (!up_) {
    ++jobs_rejected_;
    return kNoJob;
  }
  const JobId id{next_job_++};
  admit(id, std::move(job));
  return id;
}

void Processor::submitReserved(JobId id, Job job) {
  RTDRM_ASSERT(job.demand >= SimDuration::zero());
  RTDRM_ASSERT_MSG((id.value & kReservedBit) != 0,
                   "submitReserved needs an id from reserveJobId()");
  if (!up_) {
    ++jobs_rejected_;  // dropped like submit(): on_complete never fires
    return;
  }
  admit(id, std::move(job));
}

void Processor::admit(JobId id, Job job) {
  // Demand is reference-speed CPU time; this node serves it at its own
  // (possibly throttled) speed, so the resident's remaining counter is
  // wall service time.
  const SimDuration wall = job.demand / (config_.speed * speed_factor_);
  Resident incoming{id, wall, std::move(job)};
  const SchedContext ctx = schedContext();
  // The running job owns the front slot (settle/abort rely on it), so an
  // arrival during a stretch may enter the waiting tail at the earliest.
  const std::size_t floor = running_ ? 1 : 0;
  std::size_t pos = policy_->insertPos(queue_, incoming, floor, ctx);
  RTDRM_ASSERT_MSG(pos >= floor && pos <= queue_.size(),
                   "insertPos out of range");
  const Resident& placed = *queue_.insert(
      queue_.begin() + static_cast<std::ptrdiff_t>(pos), std::move(incoming));
  if (!running_) {
    dispatch();
  } else if (policy_->preemptOnAdmit(queue_, placed, ctx)) {
    // The arrival outranks (or, for RR, breaks up) the running stretch:
    // settle the consumed span and decide afresh.
    settleRunningStretch();
    dispatch();
  }
}

bool Processor::abort(JobId id) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->id != id) {
      continue;
    }
    const bool is_running = running_ && it == queue_.begin();
    if (is_running) {
      settleRunningStretch();
    }
    queue_.erase(it);
    ++jobs_aborted_;
    if (is_running) {
      dispatch();
    }
    return true;
  }
  return false;
}

void Processor::setUp(bool up) {
  if (up == up_) {
    return;
  }
  if (!up) {
    // Crash: whatever was resident is lost with the node's private memory.
    // No on_complete fires — submitters see their work vanish, exactly the
    // failure mode the manager's detector has to recover from.
    if (running_) {
      settleRunningStretch();
    }
    jobs_aborted_ += queue_.size();
    queue_.clear();
  }
  up_ = up;
}

void Processor::setSpeedFactor(double factor) {
  RTDRM_ASSERT(factor > 0.0);
  if (factor == speed_factor_) {
    return;
  }
  if (running_) {
    settleRunningStretch();
  }
  // Outstanding wall time was priced at the old effective speed; re-price
  // it so the remaining demand is served at the new rate from now on. Only
  // the service component scales: the context-switch residue banked by the
  // settle is fixed wall time (ProcessorConfig::context_switch semantics)
  // and carries over unchanged.
  const double scale = speed_factor_ / factor;
  for (Resident& r : queue_) {
    r.remaining = r.remaining * scale;
  }
  speed_factor_ = factor;
  dispatch();
}

SimDuration Processor::busyTime() const {
  if (!running_) {
    return busy_accum_;
  }
  // The in-flight span is not in busy_accum_ yet (the accumulator only
  // advances when a stretch terminates), so adding it here cannot double
  // count — see the invariant note in the header.
  return busy_accum_ + (sim_.now() - stretch_start_);
}

void Processor::dispatch() {
  if (running_ || queue_.empty()) {
    return;
  }
  const std::size_t pick = policy_->pickNext(queue_, schedContext());
  RTDRM_ASSERT_MSG(pick < queue_.size(), "pickNext out of range");
  if (pick != 0) {
    auto it = queue_.begin() + static_cast<std::ptrdiff_t>(pick);
    Resident r = std::move(*it);
    queue_.erase(it);
    queue_.push_front(std::move(r));
  }
  Resident& head = queue_.front();
  const SimDuration service =
      policy_->slice(head, queue_.size(), schedContext());
  // A job resuming the stretch it was settled out of only owes the
  // unconsumed residue of that stretch's context-switch charge; any other
  // pick is a fresh dispatch boundary and pays the full charge. The credit
  // is single-shot: whatever this dispatch decides voids it.
  stretch_cs_ =
      head.id == resume_id_ ? resume_cs_ : config_.context_switch;
  resume_id_ = kNoJob;
  resume_cs_ = SimDuration::zero();
  stretch_len_ = service + stretch_cs_;
  stretch_start_ = sim_.now();
  running_ = true;
  stretch_event_ =
      sim_.scheduleAfter(stretch_len_, [this] { onStretchEnd(); });
}

void Processor::onStretchEnd() {
  RTDRM_ASSERT(running_ && !queue_.empty());
  busy_accum_ += stretch_len_;
  const SimDuration service = stretch_len_ - stretch_cs_;
  served_accum_ += service;
  overhead_accum_ += stretch_cs_;
  Resident& head = queue_.front();
  head.remaining -= service;
  running_ = false;

  if (head.remaining.ms() <= kResidualEpsMs) {
    Job done = std::move(head.job);
    queue_.pop_front();
    ++jobs_completed_;
    if (done.on_complete) {
      done.on_complete();
    }
  } else if (policy_->rotateExpired() && queue_.size() > 1) {
    // Round-robin rotation: expired quantum goes to the tail.
    Resident r = std::move(queue_.front());
    queue_.pop_front();
    queue_.push_back(std::move(r));
  }
  dispatch();
}

void Processor::settleRunningStretch() {
  RTDRM_ASSERT(running_ && !queue_.empty());
  const SimDuration elapsed = sim_.now() - stretch_start_;
  busy_accum_ += elapsed;
  // The context-switch charge is consumed first (it models the overhead of
  // *entering* the stretch); only time past it is service.
  const SimDuration cs_consumed = std::min(elapsed, stretch_cs_);
  const SimDuration consumed = elapsed - cs_consumed;
  served_accum_ += consumed;
  overhead_accum_ += cs_consumed;
  queue_.front().remaining -= consumed;
  // Residual dust from floating-point subtraction: clamp within the
  // explicit tolerance so the job completes on its next stretch. Anything
  // larger than kResidualEpsMs negative would mean the stretch served more
  // than the job had — a scheduling bug, not dust.
  if (queue_.front().remaining < SimDuration::zero()) {
    RTDRM_ASSERT_MSG(queue_.front().remaining.ms() >= -Processor::kResidualEpsMs,
                     "stretch served more than the job's remaining demand");
    queue_.front().remaining = SimDuration::zero();
  }
  // Bank the unconsumed context-switch residue for the settled job: if the
  // next dispatch resumes it, continuing is not a new dispatch boundary.
  resume_id_ = queue_.front().id;
  resume_cs_ = stretch_cs_ - cs_consumed;
  sim_.cancel(stretch_event_);
  running_ = false;
}

Utilization UtilizationProbe::peek() const {
  const SimDuration window = sim_.now() - last_t_;
  if (window <= SimDuration::zero()) {
    return Utilization::zero();
  }
  const SimDuration busy = cpu_.busyTime() - last_busy_;
  return Utilization::fraction(busy / window);
}

Utilization UtilizationProbe::sample() {
  const Utilization u = peek();
  last_t_ = sim_.now();
  last_busy_ = cpu_.busyTime();
  return u;
}

}  // namespace rtdrm::node
