#include "node/processor.hpp"

#include <algorithm>
#include <iterator>
#include <utility>

#include "common/assert.hpp"

namespace rtdrm::node {

namespace {
// Jobs whose residual demand falls below this are complete (guards against
// floating-point dust from repeated quantum subtraction).
constexpr double kResidualEpsMs = 1e-9;
}  // namespace

Processor::Processor(sim::Simulator& simulator, ProcessorId id,
                     ProcessorConfig config)
    : sim_(simulator), id_(id), config_(config) {
  RTDRM_ASSERT(config_.quantum > SimDuration::zero());
  RTDRM_ASSERT(config_.context_switch >= SimDuration::zero());
  RTDRM_ASSERT(config_.speed > 0.0);
}

JobId Processor::submit(Job job) {
  RTDRM_ASSERT(job.demand >= SimDuration::zero());
  if (!up_) {
    ++jobs_rejected_;
    return kNoJob;
  }
  const JobId id{next_job_++};
  admit(id, std::move(job));
  return id;
}

void Processor::submitReserved(JobId id, Job job) {
  RTDRM_ASSERT(job.demand >= SimDuration::zero());
  RTDRM_ASSERT_MSG((id.value & kReservedBit) != 0,
                   "submitReserved needs an id from reserveJobId()");
  if (!up_) {
    ++jobs_rejected_;  // dropped like submit(): on_complete never fires
    return;
  }
  admit(id, std::move(job));
}

void Processor::admit(JobId id, Job job) {
  const int prio = job.priority;
  // Demand is reference-speed CPU time; this node serves it at its own
  // (possibly throttled) speed, so the resident's remaining counter is
  // wall service time.
  const SimDuration wall = job.demand / (config_.speed * speed_factor_);
  queue_.push_back(Resident{id, wall, std::move(job)});
  if (!running_) {
    dispatch();
  } else if (config_.policy == SchedPolicy::kRoundRobin &&
             stretch_len_ > config_.quantum + config_.context_switch) {
    // The running job held an extended (uncontended) stretch; contention has
    // arrived, so truncate it and fall back to quantum-granular slicing.
    settleRunningStretch();
    dispatch();
  } else if (config_.policy == SchedPolicy::kPriority &&
             prio < queue_.front().job.priority) {
    // Preemptive priority: the newcomer outranks the running job.
    settleRunningStretch();
    dispatch();
  }
}

bool Processor::abort(JobId id) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->id != id) {
      continue;
    }
    const bool is_running = running_ && it == queue_.begin();
    if (is_running) {
      settleRunningStretch();
    }
    queue_.erase(it);
    ++jobs_aborted_;
    if (is_running) {
      dispatch();
    }
    return true;
  }
  return false;
}

void Processor::setUp(bool up) {
  if (up == up_) {
    return;
  }
  if (!up) {
    // Crash: whatever was resident is lost with the node's private memory.
    // No on_complete fires — submitters see their work vanish, exactly the
    // failure mode the manager's detector has to recover from.
    if (running_) {
      settleRunningStretch();
    }
    jobs_aborted_ += queue_.size();
    queue_.clear();
  }
  up_ = up;
}

void Processor::setSpeedFactor(double factor) {
  RTDRM_ASSERT(factor > 0.0);
  if (factor == speed_factor_) {
    return;
  }
  if (running_) {
    settleRunningStretch();
  }
  // Outstanding wall time was priced at the old effective speed; re-price
  // it so the remaining demand is served at the new rate from now on.
  const double scale = speed_factor_ / factor;
  for (Resident& r : queue_) {
    r.remaining = r.remaining * scale;
  }
  speed_factor_ = factor;
  dispatch();
}

SimDuration Processor::busyTime() const {
  if (!running_) {
    return busy_accum_;
  }
  return busy_accum_ + (sim_.now() - stretch_start_);
}

void Processor::dispatch() {
  if (running_ || queue_.empty()) {
    return;
  }
  if (config_.policy == SchedPolicy::kPriority && queue_.size() > 1) {
    // Bring the best-ranked job (lowest priority value; FIFO among equals)
    // to the front. Stable: the scan keeps the earliest of equal rank.
    auto best = queue_.begin();
    for (auto it = std::next(queue_.begin()); it != queue_.end(); ++it) {
      if (it->job.priority < best->job.priority) {
        best = it;
      }
    }
    if (best != queue_.begin()) {
      Resident r = std::move(*best);
      queue_.erase(best);
      queue_.push_front(std::move(r));
    }
  }
  Resident& head = queue_.front();
  SimDuration service;
  if (config_.policy != SchedPolicy::kRoundRobin || queue_.size() == 1) {
    service = head.remaining;  // run to completion / uncontended stretch
  } else {
    service = std::min(config_.quantum, head.remaining);
  }
  stretch_len_ = service + config_.context_switch;
  stretch_start_ = sim_.now();
  running_ = true;
  stretch_event_ =
      sim_.scheduleAfter(stretch_len_, [this] { onStretchEnd(); });
}

void Processor::onStretchEnd() {
  RTDRM_ASSERT(running_ && !queue_.empty());
  busy_accum_ += stretch_len_;
  Resident& head = queue_.front();
  head.remaining -= stretch_len_ - config_.context_switch;
  running_ = false;

  if (head.remaining.ms() <= kResidualEpsMs) {
    Job done = std::move(head.job);
    queue_.pop_front();
    ++jobs_completed_;
    if (done.on_complete) {
      done.on_complete();
    }
  } else if (queue_.size() > 1) {
    // Round-robin rotation: expired quantum goes to the tail.
    Resident r = std::move(queue_.front());
    queue_.pop_front();
    queue_.push_back(std::move(r));
  }
  dispatch();
}

void Processor::settleRunningStretch() {
  RTDRM_ASSERT(running_ && !queue_.empty());
  const SimDuration elapsed = sim_.now() - stretch_start_;
  busy_accum_ += elapsed;
  const SimDuration consumed =
      std::max(SimDuration::zero(), elapsed - config_.context_switch);
  queue_.front().remaining -= consumed;
  // Residual dust: clamp at zero so the job completes on its next stretch.
  if (queue_.front().remaining < SimDuration::zero()) {
    queue_.front().remaining = SimDuration::zero();
  }
  sim_.cancel(stretch_event_);
  running_ = false;
}

Utilization UtilizationProbe::peek() const {
  const SimDuration window = sim_.now() - last_t_;
  if (window <= SimDuration::zero()) {
    return Utilization::zero();
  }
  const SimDuration busy = cpu_.busyTime() - last_busy_;
  return Utilization::fraction(busy / window);
}

Utilization UtilizationProbe::sample() {
  const Utilization u = peek();
  last_t_ = sim_.now();
  last_busy_ = cpu_.busyTime();
  return u;
}

}  // namespace rtdrm::node
