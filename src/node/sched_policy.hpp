// Pluggable per-processor scheduling policies.
//
// The Processor used to hard-code its three dispatch disciplines
// (round-robin / FIFO / static priority) in branches; this interface makes
// the discipline a strategy object so dynamic-priority real-time policies
// (EDF, RMS, LLF) plug in beside them. The hooks mirror the decision
// points of the Processor's event loop:
//
//   * insertPos()     — where an arriving job enters the ready queue,
//   * preemptOnAdmit()— whether that arrival truncates the running stretch,
//   * pickNext()      — which resident the next stretch serves,
//   * slice()         — how much service the stretch grants,
//   * rotateExpired() — whether an unfinished head rotates to the tail.
//
// Every hook must be deterministic (pure functions of the queue and the
// context): the sharded engine's det mode replays the same decisions on
// any thread count, and the fuzzer's seed-replay digests pin them down.
// Ties are broken by JobId, the one total order that exists on every job.
#pragma once

#include <cstddef>
#include <deque>
#include <memory>
#include <string>

#include "node/job.hpp"

namespace rtdrm::node {

enum class SchedPolicy {
  kRoundRobin,  ///< time-sliced, quantum from ProcessorConfig
  kFifo,        ///< run to completion in arrival order
  kPriority,    ///< preemptive static priority (Job::priority, lower first),
                ///< FIFO within a priority level
  kEdf,         ///< earliest absolute deadline first (Job::deadline),
                ///< preemptive; deadline-less jobs rank last
  kRms,         ///< rate-monotonic: shortest Job::period first, preemptive;
                ///< aperiodic jobs rank last
  kLlf,         ///< least laxity first (deadline - now - remaining),
                ///< re-evaluated per quantum under contention
};

/// Stable lower-case token per policy ("rr", "fifo", "priority", "edf",
/// "rms", "llf").
const char* schedPolicyName(SchedPolicy p);
/// Parses a schedPolicyName token (also accepts "round-robin" for "rr").
/// Returns false and leaves `out` untouched on unknown input.
bool parseSchedPolicy(const std::string& s, SchedPolicy* out);

/// A job resident on a processor: its id and outstanding *wall* service
/// time (demand re-priced at the node's effective speed).
struct Resident {
  JobId id;
  SimDuration remaining;
  Job job;
};

/// Decision-point context handed to every hook. `stretch_len` and
/// `stretch_elapsed` describe the in-flight stretch (scheduled length
/// including its context-switch charge, and wall time elapsed since it
/// started) and are only meaningful inside preemptOnAdmit().
struct SchedContext {
  SimTime now;
  SimDuration quantum;
  SimDuration context_switch;
  SimDuration stretch_len = SimDuration::zero();
  SimDuration stretch_elapsed = SimDuration::zero();
};

class SchedulerPolicy {
 public:
  virtual ~SchedulerPolicy() = default;
  virtual SchedPolicy kind() const = 0;

  /// Ready-queue position for `incoming` (not yet in `queue`). Must be in
  /// [floor, queue.size()]; `floor` is 1 while a stretch is running (the
  /// running job owns the front slot, an invariant of the Processor's
  /// settle/abort paths) and 0 otherwise. Default: back of the queue.
  virtual std::size_t insertPos(const std::deque<Resident>& queue,
                                const Resident& incoming, std::size_t floor,
                                const SchedContext& ctx) const {
    (void)incoming;
    (void)floor;
    (void)ctx;
    return queue.size();
  }

  /// Called after `incoming` was inserted while a stretch is in flight
  /// (queue.front() is the running job). True truncates the stretch: the
  /// consumed span is settled and pickNext() decides afresh.
  virtual bool preemptOnAdmit(const std::deque<Resident>& queue,
                              const Resident& incoming,
                              const SchedContext& ctx) const = 0;

  /// Index of the resident the next stretch serves (queue is non-empty and
  /// idle; the Processor moves the pick to the front).
  virtual std::size_t pickNext(const std::deque<Resident>& queue,
                               const SchedContext& ctx) const = 0;

  /// Pure service time granted to the picked head this stretch (the
  /// context-switch charge is added by the Processor).
  virtual SimDuration slice(const Resident& head, std::size_t queue_size,
                            const SchedContext& ctx) const = 0;

  /// Whether a head that expired its slice unfinished rotates to the tail
  /// (round-robin) instead of staying in place for re-selection.
  virtual bool rotateExpired() const = 0;
};

/// Factory for the built-in policies.
std::unique_ptr<SchedulerPolicy> makeSchedulerPolicy(SchedPolicy kind);

}  // namespace rtdrm::node
