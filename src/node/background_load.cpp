#include "node/background_load.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace rtdrm::node {

BackgroundLoad::BackgroundLoad(sim::Simulator& simulator, Processor& cpu,
                               Xoshiro256 rng, BackgroundLoadConfig config)
    : sim_(simulator), cpu_(cpu), rng_(rng), config_(config) {
  RTDRM_ASSERT(config_.mean_service > SimDuration::zero());
}

BackgroundLoad::~BackgroundLoad() {
  if (armed_) {
    sim_.cancel(pending_);
  }
}

void BackgroundLoad::setTarget(Utilization target) {
  target_ = Utilization::fraction(std::min(target.value(), 0.95));
  if (target_.value() <= 0.0) {
    if (armed_) {
      sim_.cancel(pending_);
      armed_ = false;
    }
    return;
  }
  if (!armed_) {
    armNextArrival();
  }
}

void BackgroundLoad::armNextArrival() {
  const double mean_interarrival_ms =
      config_.mean_service.ms() / target_.value();
  const SimDuration gap =
      SimDuration::millis(rng_.exponentialMean(mean_interarrival_ms));
  armed_ = true;
  pending_ = sim_.scheduleAfter(gap, [this] { onArrival(); });
}

void BackgroundLoad::onArrival() {
  armed_ = false;
  const double mean = config_.mean_service.ms();
  const double demand_ms = config_.exponential_service
                               ? rng_.exponentialMean(mean)
                               : rng_.uniform(0.5 * mean, 1.5 * mean);
  cpu_.submit(Job{SimDuration::millis(demand_ms), nullptr, "bg",
                  config_.priority});
  ++injected_;
  if (target_.value() > 0.0) {
    armNextArrival();
  }
}

}  // namespace rtdrm::node
