// A simulated processor node with a time-sliced CPU scheduler.
//
// Models item 12 of the paper's system model: homogeneous processors with
// private memory, each running a Round-Robin scheduler with a 1 ms time
// slice (Table 1). A FIFO (run-to-completion) policy is also provided for
// ablation studies.
//
// Event efficiency: while only one job is resident the processor runs it in
// a single stretch (one completion event) instead of slicing; slicing
// events are only generated under contention. An arrival during a stretch
// truncates it and falls back to quantum-granular scheduling, so observable
// behaviour is identical to naive per-quantum simulation.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>

#include "node/job.hpp"
#include "sim/simulator.hpp"

namespace rtdrm::node {

enum class SchedPolicy {
  kRoundRobin,  ///< time-sliced, quantum from ProcessorConfig
  kFifo,        ///< run to completion in arrival order
  kPriority,    ///< preemptive static priority (Job::priority, lower first),
                ///< FIFO within a priority level
};

struct ProcessorConfig {
  SchedPolicy policy = SchedPolicy::kRoundRobin;
  /// Round-robin time slice; Table 1 baseline is 1 ms.
  SimDuration quantum = SimDuration::millis(1.0);
  /// Fixed context-switch overhead charged at each dispatch boundary.
  SimDuration context_switch = SimDuration::zero();
  /// Relative speed: a job of demand d occupies d / speed of wall time.
  /// 1.0 everywhere = the paper's homogeneous-processor assumption
  /// (model item 12); other values are an extension for heterogeneity
  /// studies.
  double speed = 1.0;
};

class Processor {
 public:
  Processor(sim::Simulator& simulator, ProcessorId id,
            ProcessorConfig config = {});
  Processor(const Processor&) = delete;
  Processor& operator=(const Processor&) = delete;

  ProcessorId id() const { return id_; }
  const ProcessorConfig& config() const { return config_; }

  /// Submit a job for execution. Returns its id immediately; the job's
  /// on_complete fires when its full demand has been served. A down node
  /// drops the job (counted in jobsRejected()) and returns kNoJob — its
  /// on_complete never fires, exactly like a crash between submit and
  /// completion.
  JobId submit(Job job);

  /// Reserves a job id for a submit that will be *posted* to this
  /// processor's shard (sharded engine: the submitter needs the id for its
  /// abort bookkeeping before the submit event executes). Thread-safe; the
  /// returned ids live in a separate high-bit id space so they can never
  /// collide with locally issued ones.
  JobId reserveJobId() {
    return JobId{kReservedBit |
                 reserved_ids_.fetch_add(1, std::memory_order_relaxed)};
  }
  /// Submits under a previously reserved id. Must execute on the owning
  /// shard (it is the body of the posted submit event). A down node drops
  /// the job exactly like submit().
  void submitReserved(JobId id, Job job);

  /// Abort a queued or running job (its on_complete never fires).
  /// Returns false if the job is unknown or already finished.
  bool abort(JobId id);

  /// Crash (`up = false`) or restart (`up = true`) the node. A crash
  /// silently aborts every resident job — in-flight completions are lost,
  /// no on_complete callbacks fire — and freezes busyTime(). A restart
  /// brings the node back empty; state held in its private memory is gone.
  void setUp(bool up);
  bool isUp() const { return up_; }

  /// Transient CPU throttling: effective speed is config().speed * factor.
  /// Rescales the remaining wall time of resident jobs (their outstanding
  /// demand is served at the new rate from now on). Factor must be > 0.
  void setSpeedFactor(double factor);
  double speedFactor() const { return speed_factor_; }

  /// Number of jobs resident (queued + running).
  std::size_t residentJobs() const { return queue_.size(); }
  bool busy() const { return running_; }

  /// Cumulative CPU busy time since construction (monotone). Utilization
  /// over a window is the caller's delta(busy) / delta(now) — see
  /// UtilizationProbe.
  SimDuration busyTime() const;

  std::uint64_t jobsCompleted() const { return jobs_completed_; }
  std::uint64_t jobsAborted() const { return jobs_aborted_; }
  /// Jobs dropped because they were submitted while the node was down.
  std::uint64_t jobsRejected() const { return jobs_rejected_; }

 private:
  static constexpr std::uint64_t kReservedBit = std::uint64_t{1} << 63;

  struct Resident {
    JobId id;
    SimDuration remaining;
    Job job;
  };

  /// Queues an admitted job under `id` (common tail of submit and
  /// submitReserved; pre: node is up).
  void admit(JobId id, Job job);
  /// Starts serving the queue head if idle and work is pending.
  void dispatch();
  /// End of the current service stretch (quantum or run-to-completion).
  void onStretchEnd();
  /// Accounts CPU time consumed by the in-flight stretch up to now.
  void settleRunningStretch();

  sim::Simulator& sim_;
  ProcessorId id_;
  ProcessorConfig config_;

  std::deque<Resident> queue_;
  bool up_ = true;
  double speed_factor_ = 1.0;
  bool running_ = false;
  SimTime stretch_start_ = SimTime::zero();
  SimDuration stretch_len_ = SimDuration::zero();
  sim::EventId stretch_event_{};

  SimDuration busy_accum_ = SimDuration::zero();
  std::uint64_t next_job_ = 1;
  std::atomic<std::uint64_t> reserved_ids_{1};
  std::uint64_t jobs_completed_ = 0;
  std::uint64_t jobs_aborted_ = 0;
  std::uint64_t jobs_rejected_ = 0;
};

/// Measures a processor's utilization over successive sampling intervals.
class UtilizationProbe {
 public:
  UtilizationProbe(const sim::Simulator& simulator, const Processor& cpu)
      : sim_(simulator),
        cpu_(cpu),
        last_t_(simulator.now()),
        last_busy_(cpu.busyTime()) {}

  /// Utilization since the previous sample() (or construction), then resets
  /// the window. Returns zero for an empty window.
  Utilization sample();

  /// Utilization since the previous sample() without resetting.
  Utilization peek() const;

 private:
  const sim::Simulator& sim_;
  const Processor& cpu_;
  SimTime last_t_;
  SimDuration last_busy_;
};

}  // namespace rtdrm::node
