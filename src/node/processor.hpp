// A simulated processor node with a pluggable CPU scheduler.
//
// Models item 12 of the paper's system model: homogeneous processors with
// private memory, each running a Round-Robin scheduler with a 1 ms time
// slice (Table 1). The scheduling discipline itself is a strategy object
// (node/sched_policy.hpp): FIFO and static priority are provided for
// ablation studies, and the real-time disciplines EDF, RMS and LLF plug in
// for the scheduler x adaptation studies (ROADMAP item 3).
//
// Event efficiency: while only one job is resident the processor runs it in
// a single stretch (one completion event) instead of slicing; slicing
// events are only generated under contention. An arrival during a stretch
// truncates it and falls back to quantum-granular scheduling, so observable
// behaviour is identical to naive per-quantum simulation.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>

#include "node/job.hpp"
#include "node/sched_policy.hpp"
#include "sim/simulator.hpp"

namespace rtdrm::node {

struct ProcessorConfig {
  SchedPolicy policy = SchedPolicy::kRoundRobin;
  /// Time slice of the quantum-granular policies (RR always; LLF under
  /// contention); Table 1 baseline is 1 ms.
  SimDuration quantum = SimDuration::millis(1.0);
  /// Fixed context-switch overhead charged at each dispatch boundary.
  /// Wall time, NOT scaled by `speed` or the throttle factor (bus
  /// arbitration and cache refill do not speed up with the core clock).
  SimDuration context_switch = SimDuration::zero();
  /// Relative speed: a job of demand d occupies d / speed of wall time.
  /// 1.0 everywhere = the paper's homogeneous-processor assumption
  /// (model item 12); other values are an extension for heterogeneity
  /// studies.
  double speed = 1.0;

  /// Aborts (RTDRM_ASSERT style, mirroring fault::FaultPlan::validate)
  /// on a non-positive quantum, negative context switch, or non-positive
  /// speed. Called by the Processor constructor and by scenario/CLI
  /// builders before wiring a cluster.
  void validate() const;
};

class Processor {
 public:
  /// Residual tolerance: a job whose remaining service is within this of
  /// zero is complete. Bounds the floating-point dust of repeated quantum
  /// subtraction; equivalently, at most this much of a job's submitted
  /// demand may go unserved (the property tests pin that budget down).
  static constexpr double kResidualEpsMs = 1e-9;

  Processor(sim::Simulator& simulator, ProcessorId id,
            ProcessorConfig config = {});
  Processor(const Processor&) = delete;
  Processor& operator=(const Processor&) = delete;

  ProcessorId id() const { return id_; }
  const ProcessorConfig& config() const { return config_; }

  /// Submit a job for execution. Returns its id immediately; the job's
  /// on_complete fires when its full demand has been served. A down node
  /// drops the job (counted in jobsRejected()) and returns kNoJob — its
  /// on_complete never fires, exactly like a crash between submit and
  /// completion.
  JobId submit(Job job);

  /// Reserves a job id for a submit that will be *posted* to this
  /// processor's shard (sharded engine: the submitter needs the id for its
  /// abort bookkeeping before the submit event executes). Thread-safe; the
  /// returned ids live in a separate high-bit id space so they can never
  /// collide with locally issued ones.
  JobId reserveJobId() {
    return JobId{kReservedBit |
                 reserved_ids_.fetch_add(1, std::memory_order_relaxed)};
  }
  /// Submits under a previously reserved id. Must execute on the owning
  /// shard (it is the body of the posted submit event). A down node drops
  /// the job exactly like submit().
  void submitReserved(JobId id, Job job);

  /// Abort a queued or running job (its on_complete never fires).
  /// Returns false if the job is unknown or already finished.
  bool abort(JobId id);

  /// Crash (`up = false`) or restart (`up = true`) the node. A crash
  /// silently aborts every resident job — in-flight completions are lost,
  /// no on_complete callbacks fire — and freezes busyTime(). A restart
  /// brings the node back empty; state held in its private memory is gone.
  void setUp(bool up);
  bool isUp() const { return up_; }

  /// Transient CPU throttling: effective speed is config().speed * factor.
  /// Rescales the remaining wall time of resident jobs (their outstanding
  /// demand is served at the new rate from now on); the fixed
  /// context-switch component of an in-flight stretch is NOT rescaled —
  /// its unconsumed part carries over to the resumed stretch unchanged.
  /// Factor must be > 0.
  void setSpeedFactor(double factor);
  double speedFactor() const { return speed_factor_; }

  /// Number of jobs resident (queued + running).
  std::size_t residentJobs() const { return queue_.size(); }
  bool busy() const { return running_; }

  /// Cumulative CPU busy time since construction (monotone). Utilization
  /// over a window is the caller's delta(busy) / delta(now) — see
  /// UtilizationProbe.
  ///
  /// Accounting invariant (audited, no double-count): busy_accum_ advances
  /// ONLY when a stretch terminates — onStretchEnd adds the full stretch
  /// length, settleRunningStretch adds the elapsed span — and every
  /// termination path clears running_ first. While a stretch is in flight
  /// this adds the elapsed span exactly once on top of an accumulator that
  /// does not yet include any of it. At all times
  ///   busyTime() == demandServed() + schedOverhead() + in-flight span,
  /// the conservation law the check/ oracle sweeps (policy-agnostic: no
  /// scheduling discipline can create or destroy CPU time).
  SimDuration busyTime() const;

  /// Cumulative pure service time charged to jobs (updated at stretch
  /// boundaries; excludes context-switch overhead and any in-flight span).
  SimDuration demandServed() const { return served_accum_; }
  /// Cumulative context-switch overhead charged (same update points).
  SimDuration schedOverhead() const { return overhead_accum_; }

  std::uint64_t jobsCompleted() const { return jobs_completed_; }
  std::uint64_t jobsAborted() const { return jobs_aborted_; }
  /// Jobs dropped because they were submitted while the node was down.
  std::uint64_t jobsRejected() const { return jobs_rejected_; }

 private:
  static constexpr std::uint64_t kReservedBit = std::uint64_t{1} << 63;

  /// Queues an admitted job under `id` (common tail of submit and
  /// submitReserved; pre: node is up).
  void admit(JobId id, Job job);
  /// Starts serving the policy's pick if idle and work is pending.
  void dispatch();
  /// End of the current service stretch (quantum or run-to-completion).
  void onStretchEnd();
  /// Accounts CPU time consumed by the in-flight stretch up to now. The
  /// unconsumed part of the stretch's context-switch charge is banked as a
  /// resume credit: if the very same job is dispatched next it only owes
  /// the residue (continuing is not a new dispatch boundary); any other
  /// pick pays the full charge.
  void settleRunningStretch();
  SchedContext schedContext() const;

  sim::Simulator& sim_;
  ProcessorId id_;
  ProcessorConfig config_;
  std::unique_ptr<SchedulerPolicy> policy_;

  std::deque<Resident> queue_;
  bool up_ = true;
  double speed_factor_ = 1.0;
  bool running_ = false;
  SimTime stretch_start_ = SimTime::zero();
  SimDuration stretch_len_ = SimDuration::zero();
  /// Context-switch charge included in stretch_len_ (may be less than
  /// config_.context_switch when resuming a settled stretch).
  SimDuration stretch_cs_ = SimDuration::zero();
  sim::EventId stretch_event_{};
  /// Resume credit from the last settle: the job it belongs to and the
  /// context-switch residue it still owes.
  JobId resume_id_ = kNoJob;
  SimDuration resume_cs_ = SimDuration::zero();

  SimDuration busy_accum_ = SimDuration::zero();
  SimDuration served_accum_ = SimDuration::zero();
  SimDuration overhead_accum_ = SimDuration::zero();
  std::uint64_t next_job_ = 1;
  std::atomic<std::uint64_t> reserved_ids_{1};
  std::uint64_t jobs_completed_ = 0;
  std::uint64_t jobs_aborted_ = 0;
  std::uint64_t jobs_rejected_ = 0;
};

/// Measures a processor's utilization over successive sampling intervals.
class UtilizationProbe {
 public:
  UtilizationProbe(const sim::Simulator& simulator, const Processor& cpu)
      : sim_(simulator),
        cpu_(cpu),
        last_t_(simulator.now()),
        last_busy_(cpu.busyTime()) {}

  /// Utilization since the previous sample() (or construction), then resets
  /// the window. Returns zero for an empty window.
  Utilization sample();

  /// Utilization since the previous sample() without resetting.
  Utilization peek() const;

 private:
  const sim::Simulator& sim_;
  const Processor& cpu_;
  SimTime last_t_;
  SimDuration last_busy_;
};

}  // namespace rtdrm::node
