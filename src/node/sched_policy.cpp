#include "node/sched_policy.hpp"

#include <algorithm>
#include <limits>

#include "common/assert.hpp"

namespace rtdrm::node {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// EDF key: absolute deadline in ms; deadline-less jobs (background load,
/// ablation traffic) rank behind every deadline-carrying job.
double deadlineKeyMs(const Job& j) {
  return j.deadline > SimTime::zero() ? j.deadline.ms() : kInf;
}

/// RMS key: release period in ms; aperiodic jobs rank last.
double periodKeyMs(const Job& j) {
  return j.period > SimDuration::zero() ? j.period.ms() : kInf;
}

/// LLF key: laxity = deadline - now - remaining service. Deadline-less
/// jobs have infinite laxity.
double laxityMs(const Resident& r, SimTime now) {
  const double dl = deadlineKeyMs(r.job);
  return dl == kInf ? kInf : dl - now.ms() - r.remaining.ms();
}

/// Stable index of the minimum of `key` over the queue; equal keys are
/// resolved by the lower JobId (the one total order every job carries), so
/// the pick is identical on every replay regardless of arrival interleave.
template <typename KeyFn>
std::size_t argminByKey(const std::deque<Resident>& queue, KeyFn key) {
  std::size_t best = 0;
  double best_key = key(queue[0]);
  for (std::size_t i = 1; i < queue.size(); ++i) {
    const double k = key(queue[i]);
    if (k < best_key ||
        (k == best_key && queue[i].id.value < queue[best].id.value)) {
      best = i;
      best_key = k;
    }
  }
  return best;
}

class RoundRobinPolicy final : public SchedulerPolicy {
 public:
  SchedPolicy kind() const override { return SchedPolicy::kRoundRobin; }
  bool preemptOnAdmit(const std::deque<Resident>&, const Resident&,
                      const SchedContext& ctx) const override {
    // The running job held an extended (uncontended) stretch; contention
    // has arrived, so truncate it and fall back to quantum slicing.
    return ctx.stretch_len > ctx.quantum + ctx.context_switch;
  }
  std::size_t pickNext(const std::deque<Resident>&,
                       const SchedContext&) const override {
    return 0;
  }
  SimDuration slice(const Resident& head, std::size_t queue_size,
                    const SchedContext& ctx) const override {
    // Uncontended: one run-to-completion stretch instead of slicing.
    return queue_size == 1 ? head.remaining
                           : std::min(ctx.quantum, head.remaining);
  }
  bool rotateExpired() const override { return true; }
};

class FifoPolicy final : public SchedulerPolicy {
 public:
  SchedPolicy kind() const override { return SchedPolicy::kFifo; }
  bool preemptOnAdmit(const std::deque<Resident>&, const Resident&,
                      const SchedContext&) const override {
    return false;
  }
  std::size_t pickNext(const std::deque<Resident>&,
                       const SchedContext&) const override {
    return 0;
  }
  SimDuration slice(const Resident& head, std::size_t,
                    const SchedContext&) const override {
    return head.remaining;
  }
  bool rotateExpired() const override { return false; }
};

class StaticPriorityPolicy final : public SchedulerPolicy {
 public:
  SchedPolicy kind() const override { return SchedPolicy::kPriority; }
  bool preemptOnAdmit(const std::deque<Resident>& queue,
                      const Resident& incoming,
                      const SchedContext&) const override {
    // Preemptive priority: the newcomer outranks the running job.
    return incoming.job.priority < queue.front().job.priority;
  }
  std::size_t pickNext(const std::deque<Resident>& queue,
                       const SchedContext&) const override {
    // Lowest priority value wins; FIFO among equals (stable scan keeps
    // the earliest of equal rank).
    std::size_t best = 0;
    for (std::size_t i = 1; i < queue.size(); ++i) {
      if (queue[i].job.priority < queue[best].job.priority) {
        best = i;
      }
    }
    return best;
  }
  SimDuration slice(const Resident& head, std::size_t,
                    const SchedContext&) const override {
    return head.remaining;
  }
  bool rotateExpired() const override { return false; }
};

/// Common shape of EDF and RMS: a static per-job key, sorted insertion of
/// arrivals into the waiting tail, preemption on a strictly better key.
/// Ties never preempt (avoids churn); among equal keys the lower JobId is
/// served first at the next dispatch.
template <double (*KeyMs)(const Job&), SchedPolicy Kind>
class StaticKeyPolicy final : public SchedulerPolicy {
 public:
  SchedPolicy kind() const override { return Kind; }
  std::size_t insertPos(const std::deque<Resident>& queue,
                        const Resident& incoming, std::size_t floor,
                        const SchedContext&) const override {
    // Keep the waiting tail sorted by (key, JobId); the front slot belongs
    // to the running job while a stretch is in flight.
    const double k = KeyMs(incoming.job);
    std::size_t pos = floor;
    while (pos < queue.size()) {
      const double qk = KeyMs(queue[pos].job);
      if (k < qk || (k == qk && incoming.id.value < queue[pos].id.value)) {
        break;
      }
      ++pos;
    }
    return pos;
  }
  bool preemptOnAdmit(const std::deque<Resident>& queue,
                      const Resident& incoming,
                      const SchedContext&) const override {
    return KeyMs(incoming.job) < KeyMs(queue.front().job);
  }
  std::size_t pickNext(const std::deque<Resident>& queue,
                       const SchedContext&) const override {
    return argminByKey(queue, [](const Resident& r) { return KeyMs(r.job); });
  }
  SimDuration slice(const Resident& head, std::size_t,
                    const SchedContext&) const override {
    // Keys are static while a job runs, so a preempted-only-by-arrivals
    // run-to-completion stretch implements the preemptive discipline
    // exactly.
    return head.remaining;
  }
  bool rotateExpired() const override { return false; }
};

class LeastLaxityPolicy final : public SchedulerPolicy {
 public:
  SchedPolicy kind() const override { return SchedPolicy::kLlf; }
  bool preemptOnAdmit(const std::deque<Resident>& queue,
                      const Resident& incoming,
                      const SchedContext& ctx) const override {
    // The running head's resident `remaining` has not been charged for the
    // in-flight stretch yet; discount the service already consumed (the
    // context-switch charge is overhead, not progress).
    const Resident& head = queue.front();
    const SimDuration progressed = std::max(
        SimDuration::zero(), ctx.stretch_elapsed - ctx.context_switch);
    const double head_dl = deadlineKeyMs(head.job);
    const double head_laxity =
        head_dl == kInf
            ? kInf
            : head_dl - ctx.now.ms() - (head.remaining - progressed).ms();
    return laxityMs(incoming, ctx.now) < head_laxity;
  }
  std::size_t pickNext(const std::deque<Resident>& queue,
                       const SchedContext& ctx) const override {
    return argminByKey(
        queue, [&ctx](const Resident& r) { return laxityMs(r, ctx.now); });
  }
  SimDuration slice(const Resident& head, std::size_t queue_size,
                    const SchedContext& ctx) const override {
    // Laxities drift with time (a waiting job's laxity shrinks while the
    // running job's stays constant), so under contention the stretch is
    // capped at one quantum and the pick re-evaluated at each boundary.
    return queue_size == 1 ? head.remaining
                           : std::min(ctx.quantum, head.remaining);
  }
  bool rotateExpired() const override { return false; }
};

}  // namespace

const char* schedPolicyName(SchedPolicy p) {
  switch (p) {
    case SchedPolicy::kRoundRobin:
      return "rr";
    case SchedPolicy::kFifo:
      return "fifo";
    case SchedPolicy::kPriority:
      return "priority";
    case SchedPolicy::kEdf:
      return "edf";
    case SchedPolicy::kRms:
      return "rms";
    case SchedPolicy::kLlf:
      return "llf";
  }
  return "?";
}

bool parseSchedPolicy(const std::string& s, SchedPolicy* out) {
  RTDRM_ASSERT(out != nullptr);
  if (s == "rr" || s == "round-robin") {
    *out = SchedPolicy::kRoundRobin;
  } else if (s == "fifo") {
    *out = SchedPolicy::kFifo;
  } else if (s == "priority") {
    *out = SchedPolicy::kPriority;
  } else if (s == "edf") {
    *out = SchedPolicy::kEdf;
  } else if (s == "rms") {
    *out = SchedPolicy::kRms;
  } else if (s == "llf") {
    *out = SchedPolicy::kLlf;
  } else {
    return false;
  }
  return true;
}

std::unique_ptr<SchedulerPolicy> makeSchedulerPolicy(SchedPolicy kind) {
  switch (kind) {
    case SchedPolicy::kRoundRobin:
      return std::make_unique<RoundRobinPolicy>();
    case SchedPolicy::kFifo:
      return std::make_unique<FifoPolicy>();
    case SchedPolicy::kPriority:
      return std::make_unique<StaticPriorityPolicy>();
    case SchedPolicy::kEdf:
      return std::make_unique<
          StaticKeyPolicy<&deadlineKeyMs, SchedPolicy::kEdf>>();
    case SchedPolicy::kRms:
      return std::make_unique<
          StaticKeyPolicy<&periodKeyMs, SchedPolicy::kRms>>();
    case SchedPolicy::kLlf:
      return std::make_unique<LeastLaxityPolicy>();
  }
  RTDRM_ASSERT_MSG(false, "unknown scheduling policy");
  return nullptr;
}

}  // namespace rtdrm::node
