// CPU job abstraction executed by a Processor.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/units.hpp"

namespace rtdrm::node {

/// Identifier assigned by the processor on submission.
struct JobId {
  std::uint64_t value = 0;
  constexpr auto operator<=>(const JobId&) const = default;
};

/// Returned by Processor::submit when the job was dropped (node down).
/// Never assigned to a real job; abort(kNoJob) is a harmless no-op.
inline constexpr JobId kNoJob{0};

/// A unit of CPU work: `demand` milliseconds of pure service time.
///
/// Under round-robin sharing with other jobs the *response* time observed
/// by the submitter exceeds the demand — that inflation is exactly what the
/// paper's regression model eq. (3) captures as a function of utilization.
struct Job {
  /// Pure CPU service demand (time on an otherwise idle processor).
  SimDuration demand = SimDuration::zero();
  /// Invoked when the job finishes. May be empty.
  std::function<void()> on_complete;
  /// Diagnostic label ("bg", "st3/r1", ...). Not interpreted.
  std::string tag;
  /// Scheduling priority under SchedPolicy::kPriority: smaller value runs
  /// first and preempts larger ones. Ignored by RR/FIFO.
  int priority = 0;
  /// Absolute completion deadline, the EDF/LLF rank (threaded from
  /// task::TaskSpec: release + end-to-end deadline). zero() — the default —
  /// means "no deadline": such jobs rank behind every deadline-carrying
  /// one. Ignored by RR/FIFO/priority.
  SimTime deadline = SimTime::zero();
  /// Release period of the owning task, the RMS rate key (shorter period =
  /// higher rank). zero() = aperiodic, lowest rank. Ignored by the other
  /// policies.
  SimDuration period = SimDuration::zero();
};

}  // namespace rtdrm::node
