// A homogeneous cluster of processors (Table 1: 6 nodes).
//
// Owns the processors, their per-node background-load generators, and the
// utilization probes the resource manager samples each period. The network
// is deliberately *not* here — it is a separate substrate (src/net) wired
// alongside by the scenario builder.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "node/background_load.hpp"
#include "node/processor.hpp"
#include "sim/simulator.hpp"

namespace rtdrm::node {

class Cluster {
 public:
  /// `speeds` (extension): per-node relative speeds; empty = homogeneous
  /// at cpu_config.speed (the paper's model). Size must equal node_count
  /// when non-empty.
  Cluster(sim::Simulator& simulator, std::size_t node_count,
          ProcessorConfig cpu_config = {},
          const std::vector<double>& speeds = {});
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  std::size_t size() const { return cpus_.size(); }
  Processor& processor(ProcessorId id);
  const Processor& processor(ProcessorId id) const;

  /// All processor ids, in index order.
  std::vector<ProcessorId> ids() const;

  /// Creates one background-load generator per node, each with its own RNG
  /// stream. Must be called at most once.
  void attachBackgroundLoad(const RngStreams& streams,
                            BackgroundLoadConfig config = {});
  bool hasBackgroundLoad() const { return !bg_.empty(); }
  BackgroundLoad& backgroundLoad(ProcessorId id);

  /// Samples every node's utilization over the window since the previous
  /// sample; the result is retained and served by lastUtilization().
  const std::vector<Utilization>& sampleUtilization();
  /// Most recent sampled utilization of `id` (zero before first sample).
  Utilization lastUtilization(ProcessorId id) const;
  /// Mean of the most recent sample across nodes.
  Utilization meanUtilization() const;

  /// The least-utilized node (by last sample) not contained in `exclude`.
  /// Ties break toward the lower node id, matching the deterministic
  /// "pmin" selection in the paper's Fig. 5 step 3.
  std::optional<ProcessorId> leastUtilized(
      const std::vector<ProcessorId>& exclude) const;

  sim::Simulator& simulator() { return sim_; }

 private:
  sim::Simulator& sim_;
  std::vector<std::unique_ptr<Processor>> cpus_;
  std::vector<std::unique_ptr<BackgroundLoad>> bg_;
  std::vector<UtilizationProbe> probes_;
  std::vector<Utilization> last_sample_;
};

}  // namespace rtdrm::node
