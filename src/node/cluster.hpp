// A homogeneous cluster of processors (Table 1: 6 nodes).
//
// Owns the processors, their per-node background-load generators, and the
// utilization probes the resource manager samples each period. The network
// is deliberately *not* here — it is a separate substrate (src/net) wired
// alongside by the scenario builder.
//
// Management-plane index (docs/architecture.md, "Management-plane
// indices"): the selection queries the allocators hammer — leastUtilized()
// once per replica addition, belowUtilization() once per Fig.-7 action —
// are served from a utilization min-index instead of full-cluster scans.
// The index is a 4-ary min-heap of {utilization, id} entries keyed
// lexicographically so "lowest ProcessorId wins" ties are preserved, and
// is generation-tagged: sampleUtilization() only bumps a generation, and
// the first query after a sample rebuilds the heap in one O(P) pass.
// Queries between samples are read-only on the heap (a best-first descent
// over subtree roots), so any number of exclusion sets can be answered
// from one build.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "node/background_load.hpp"
#include "node/processor.hpp"
#include "sim/sharded.hpp"
#include "sim/simulator.hpp"

namespace rtdrm::node {

class Cluster {
 public:
  /// `speeds` (extension): per-node relative speeds; empty = homogeneous
  /// at cpu_config.speed (the paper's model). Size must equal node_count
  /// when non-empty.
  Cluster(sim::Simulator& simulator, std::size_t node_count,
          ProcessorConfig cpu_config = {},
          const std::vector<double>& speeds = {});

  /// Sharded construction: processors and their background load live on
  /// the engine's data shards (1..K-1, contiguous blocks of nodes; shard 0
  /// keeps the control plane), and the cross-shard seams — crash/restart,
  /// throttling, background-target changes, utilization sampling — are
  /// marshalled through engine posts and barrier snapshots. With a
  /// 1-shard engine this collapses to the legacy single-simulator wiring.
  Cluster(sim::ShardedEngine& engine, std::size_t node_count,
          ProcessorConfig cpu_config = {},
          const std::vector<double>& speeds = {});
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  std::size_t size() const { return cpus_.size(); }
  Processor& processor(ProcessorId id);
  const Processor& processor(ProcessorId id) const;

  /// All processor ids, in index order. The node count is immutable, so
  /// the vector is built once at construction and shared by reference.
  const std::vector<ProcessorId>& ids() const { return ids_; }

  /// Creates one background-load generator per node, each with its own RNG
  /// stream. Must be called at most once.
  void attachBackgroundLoad(const RngStreams& streams,
                            BackgroundLoadConfig config = {});
  bool hasBackgroundLoad() const { return !bg_.empty(); }
  BackgroundLoad& backgroundLoad(ProcessorId id);

  /// Crash or restart a node. Forwards to Processor::setUp (a crash aborts
  /// every resident job) and masks/unmasks the node in the utilization
  /// index: down nodes are invisible to leastUtilized(),
  /// belowUtilization() and cursors — in both indexed and reference-scan
  /// modes — so no allocator can place work on them. Invalidates the index
  /// and any outstanding cursors.
  void setNodeUp(ProcessorId id, bool up);
  bool isUp(ProcessorId id) const {
    RTDRM_ASSERT(id.value < cpus_.size());
    return nodeUp(id.value);
  }
  /// Number of nodes currently up.
  std::size_t upCount() const;

  /// Apply transient CPU throttling (Processor::setSpeedFactor), posted to
  /// the owning shard when sharded, applied directly otherwise.
  void applySpeedFactor(ProcessorId id, double factor);
  /// Retarget a node's background load, posted to the owning shard when
  /// sharded, applied directly otherwise.
  void setBackgroundTarget(ProcessorId id, Utilization target);

  /// The engine shard owning `id`'s processor (0 when unsharded).
  std::size_t shardOf(ProcessorId id) const {
    return shard_of_.empty() ? 0 : shard_of_[id.value];
  }
  /// True when nodes are spread over a multi-shard engine.
  bool sharded() const { return engine_ != nullptr; }
  sim::ShardedEngine* engine() { return engine_; }

  /// Samples every node's utilization over the window since the previous
  /// sample; the result is retained and served by lastUtilization().
  /// Invalidates the utilization index (rebuilt lazily on the next query).
  const std::vector<Utilization>& sampleUtilization();

  /// Partition-private sampling for the decentralized management plane:
  /// samples nodes [lo, hi) over each node's window since *its* previous
  /// partition sample and writes the fractions into `out` (resized to
  /// hi - lo) WITHOUT publishing into lastUtilization() or touching the
  /// utilization index — published views only change when a gossiped
  /// summary is applied (applyGossipSample), so a standby's samples never
  /// leak into the active manager's decisions except over the wire.
  /// Partitions must be disjoint across callers (each consumes its nodes'
  /// probe state). Do not mix with sampleUtilization() in one run.
  void samplePartitionInto(std::size_t lo, std::size_t hi,
                           std::vector<Utilization>& out);

  /// Publishes one gossiped utilization into the cluster view served by
  /// lastUtilization()/leastUtilized()/belowUtilization(), invalidating
  /// the index (rebuilt lazily on the next query).
  void applyGossipSample(ProcessorId id, Utilization u);
  /// Most recent sampled utilization of `id` (zero before first sample).
  Utilization lastUtilization(ProcessorId id) const;
  /// Mean of the most recent sample across nodes.
  Utilization meanUtilization() const;

  /// The least-utilized node (by last sample) not contained in `exclude`.
  /// Ties break toward the lower node id, matching the deterministic
  /// "pmin" selection in the paper's Fig. 5 step 3. Served by the
  /// utilization min-index: O(|exclude| log |exclude|) per call after an
  /// amortized O(P) rebuild per sample, vs the reference scan's
  /// O(P·|exclude|).
  std::optional<ProcessorId> leastUtilized(
      const std::vector<ProcessorId>& exclude) const;

  /// Every node whose last-sampled utilization is strictly below `limit`,
  /// in ascending id order (the Fig.-7 candidate set). Returns scratch
  /// storage reused by the next call; copy if you need to keep it.
  const std::vector<ProcessorId>& belowUtilization(Utilization limit) const;

  /// Lazy ascending-(utilization, id) traversal: next() yields the least
  /// utilized node not in the construction-time exclusion set and not yet
  /// yielded — exactly the sequence repeated leastUtilized() calls with a
  /// growing exclusion set would select, but amortized O(log P) per yield
  /// (each heap node enters the traversal frontier at most once over the
  /// cursor's life) instead of O(|exclude| log |exclude|) per one-shot
  /// query. The Fig.-5 growth loop walks one cursor per replicate() call.
  /// Reads the index built at construction: a cursor must not outlive the
  /// next sampleUtilization() (asserted in debug builds).
  class UtilizationCursor {
   public:
    std::optional<ProcessorId> next();

   private:
    friend class Cluster;
    UtilizationCursor(const Cluster& cluster,
                      const std::vector<ProcessorId>& exclude);

    const Cluster* cluster_;
    bool use_index_;
    std::uint64_t generation_ = 0;             ///< staleness guard
    std::vector<std::uint64_t> exclude_bits_;  ///< cursor-owned (not scratch)
    std::vector<std::uint32_t> frontier_;
    std::vector<ProcessorId> scan_exclude_;    ///< scan-fallback state
  };
  UtilizationCursor utilizationCursor(
      const std::vector<ProcessorId>& exclude) const {
    return UtilizationCursor(*this, exclude);
  }

  /// Benchmark/test escape hatch: route leastUtilized() and
  /// belowUtilization() through the seed's linear scans instead of the
  /// index. Both paths are decision-identical; bench_scale uses this to
  /// measure indexed-vs-scan on one build, and tests use it as the
  /// reference oracle.
  void setUtilizationIndexEnabled(bool enabled) { index_enabled_ = enabled; }
  bool utilizationIndexEnabled() const { return index_enabled_; }

  sim::Simulator& simulator() { return sim_; }

  /// Lazy index rebuilds performed so far (one per first-query-after-sample).
  std::uint64_t indexRebuilds() const { return index_rebuilds_; }
  /// Total UtilizationCursor::next() yields served across all cursors.
  std::uint64_t cursorAdvances() const { return cursor_advances_; }
  /// Utilization sweeps taken (sampleUtilization() calls).
  std::uint64_t samplesTaken() const { return samples_taken_; }

  /// Publishes cluster counters into `reg` under "node." names.
  void exportMetrics(obs::MetricsRegistry& reg) const;

 private:
  /// One index entry; key is (utilization, id) lexicographic so equal
  /// utilizations keep the lowest-id-wins contract.
  struct UtilEntry {
    double u = 0.0;
    std::uint32_t id = 0;
  };
  static bool keyLess(const UtilEntry& a, const UtilEntry& b) {
    if (a.u != b.u) {
      return a.u < b.u;
    }
    return a.id < b.id;
  }

  /// Rebuilds the 4-ary heap from last_sample_ and stamps it with the
  /// current sample generation.
  void rebuildIndex() const;
  /// The seed's O(P·|exclude|) reference implementation.
  std::optional<ProcessorId> leastUtilizedScan(
      const std::vector<ProcessorId>& exclude) const;

  /// Common construction tail: builds processors/probes over simOf().
  void buildNodes(std::size_t node_count, const ProcessorConfig& cpu_config,
                  const std::vector<double>& speeds);
  /// The simulator owning node `i`'s events (sim_ when unsharded).
  sim::Simulator& simOf(std::size_t i) {
    return engine_ ? engine_->shard(shard_of_[i]) : sim_;
  }
  /// Up/down as the control plane sees it. Sharded mode reads the
  /// cluster-side membership record (authoritative: transitions are always
  /// initiated here, the posted Processor::setUp lands within one barrier)
  /// instead of racing the owning shard's processor state.
  bool nodeUp(std::size_t i) const {
    return engine_ ? up_state_[i] != 0 : cpus_[i]->isUp();
  }
  /// Barrier hook: copies every processor's busyTime() into
  /// busy_snapshot_ while all shards are quiescent — the coherent reading
  /// sampleUtilization() consumes. Staleness is < one lookahead window.
  void refreshBusySnapshot();

  sim::Simulator& sim_;
  sim::ShardedEngine* engine_ = nullptr;  ///< nullptr = legacy single queue
  std::vector<std::uint32_t> shard_of_;   ///< node -> owning shard
  std::vector<std::uint8_t> up_state_;    ///< control-plane membership view
  std::vector<SimDuration> busy_snapshot_;   ///< barrier-coherent busyTime
  std::vector<SimDuration> sampled_busy_;    ///< snapshot at last sample
  SimTime last_sample_t_ = SimTime::zero();  ///< sharded sampling window
  std::vector<SimTime> part_sample_t_;       ///< per-node partition windows
  std::vector<std::unique_ptr<Processor>> cpus_;
  std::vector<std::unique_ptr<BackgroundLoad>> bg_;
  std::vector<UtilizationProbe> probes_;
  std::vector<Utilization> last_sample_;
  std::vector<ProcessorId> ids_;

  // --- utilization min-index (mutable: rebuilt lazily from const queries;
  // the cluster is single-threaded by design, like the simulator it runs
  // on).
  bool index_enabled_ = true;
  std::uint64_t sample_generation_ = 1;          ///< bumped per sample
  mutable std::uint64_t index_generation_ = 0;   ///< generation heap holds
  mutable std::vector<UtilEntry> util_heap_;     ///< 4-ary min-heap
  mutable std::vector<std::uint64_t> exclude_bits_;  ///< per-call bitset
  mutable std::vector<std::uint32_t> frontier_;      ///< descent scratch
  mutable std::vector<ProcessorId> below_scratch_;   ///< belowUtilization out

  // --- observability counters (mutable: bumped from const query paths).
  mutable std::uint64_t index_rebuilds_ = 0;
  mutable std::uint64_t cursor_advances_ = 0;
  std::uint64_t samples_taken_ = 0;
};

}  // namespace rtdrm::node
