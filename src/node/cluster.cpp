#include "node/cluster.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "obs/metrics.hpp"

namespace rtdrm::node {

Cluster::Cluster(sim::Simulator& simulator, std::size_t node_count,
                 ProcessorConfig cpu_config,
                 const std::vector<double>& speeds)
    : sim_(simulator) {
  buildNodes(node_count, cpu_config, speeds);
}

Cluster::Cluster(sim::ShardedEngine& engine, std::size_t node_count,
                 ProcessorConfig cpu_config,
                 const std::vector<double>& speeds)
    : sim_(engine.control()) {
  const std::size_t shards = engine.shardCount();
  if (shards > 1) {
    engine_ = &engine;
    shard_of_.resize(node_count);
    // Contiguous blocks over the data shards 1..K-1; shard 0 keeps the
    // control plane (Ethernet, clocks, managers). Blocks, not striding,
    // so a shard's processors share cache locality.
    const std::size_t data_shards = shards - 1;
    for (std::size_t i = 0; i < node_count; ++i) {
      shard_of_[i] =
          static_cast<std::uint32_t>(1 + (i * data_shards) / node_count);
    }
    up_state_.assign(node_count, 1);
    busy_snapshot_.assign(node_count, SimDuration::zero());
    sampled_busy_.assign(node_count, SimDuration::zero());
    part_sample_t_.assign(node_count, SimTime::zero());
    engine.addBarrierHook([this] { refreshBusySnapshot(); });
  }
  buildNodes(node_count, cpu_config, speeds);
}

void Cluster::buildNodes(std::size_t node_count,
                         const ProcessorConfig& cpu_config,
                         const std::vector<double>& speeds) {
  RTDRM_ASSERT(node_count > 0);
  RTDRM_ASSERT_MSG(speeds.empty() || speeds.size() == node_count,
                   "speeds must be empty or one per node");
  cpus_.reserve(node_count);
  probes_.reserve(node_count);
  ids_.reserve(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    ProcessorConfig cfg = cpu_config;
    if (!speeds.empty()) {
      cfg.speed = speeds[i];
    }
    cpus_.push_back(std::make_unique<Processor>(
        simOf(i), ProcessorId{static_cast<std::uint32_t>(i)}, cfg));
    probes_.emplace_back(simOf(i), *cpus_.back());
    ids_.push_back(ProcessorId{static_cast<std::uint32_t>(i)});
  }
  last_sample_.assign(node_count, Utilization::zero());
  exclude_bits_.assign((node_count + 63) / 64, 0);
}

Processor& Cluster::processor(ProcessorId id) {
  RTDRM_ASSERT(id.value < cpus_.size());
  return *cpus_[id.value];
}

const Processor& Cluster::processor(ProcessorId id) const {
  RTDRM_ASSERT(id.value < cpus_.size());
  return *cpus_[id.value];
}

void Cluster::attachBackgroundLoad(const RngStreams& streams,
                                   BackgroundLoadConfig config) {
  RTDRM_ASSERT_MSG(bg_.empty(), "background load already attached");
  bg_.reserve(cpus_.size());
  for (std::size_t i = 0; i < cpus_.size(); ++i) {
    bg_.push_back(std::make_unique<BackgroundLoad>(
        simOf(i), *cpus_[i], streams.get("bg-load", i), config));
  }
}

BackgroundLoad& Cluster::backgroundLoad(ProcessorId id) {
  RTDRM_ASSERT(hasBackgroundLoad() && id.value < bg_.size());
  return *bg_[id.value];
}

void Cluster::setNodeUp(ProcessorId id, bool up) {
  RTDRM_ASSERT(id.value < cpus_.size());
  if (nodeUp(id.value) == up) {
    return;
  }
  if (engine_) {
    // Record the membership change here (the control plane's view flips
    // immediately and deterministically), and post the processor-side
    // transition — crash aborts of resident jobs, busy-time freeze — to
    // the owning shard; it lands within one barrier window.
    up_state_[id.value] = up ? 1 : 0;
    Processor* cpu = cpus_[id.value].get();
    engine_->post(0, shard_of_[id.value], engine_->postHorizon(0),
                  [cpu, up] { cpu->setUp(up); });
  } else {
    cpus_[id.value]->setUp(up);
  }
  // The membership of the index changed mid-sample: invalidate it (and any
  // outstanding cursors, via their generation guard).
  ++sample_generation_;
}

void Cluster::applySpeedFactor(ProcessorId id, double factor) {
  RTDRM_ASSERT(id.value < cpus_.size());
  if (engine_) {
    Processor* cpu = cpus_[id.value].get();
    engine_->post(0, shard_of_[id.value], engine_->postHorizon(0),
                  [cpu, factor] { cpu->setSpeedFactor(factor); });
    return;
  }
  cpus_[id.value]->setSpeedFactor(factor);
}

void Cluster::setBackgroundTarget(ProcessorId id, Utilization target) {
  RTDRM_ASSERT(hasBackgroundLoad() && id.value < bg_.size());
  if (engine_) {
    BackgroundLoad* bg = bg_[id.value].get();
    engine_->post(0, shard_of_[id.value], engine_->postHorizon(0),
                  [bg, target] { bg->setTarget(target); });
    return;
  }
  bg_[id.value]->setTarget(target);
}

std::size_t Cluster::upCount() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < cpus_.size(); ++i) {
    n += nodeUp(i) ? 1 : 0;
  }
  return n;
}

void Cluster::refreshBusySnapshot() {
  for (std::size_t i = 0; i < cpus_.size(); ++i) {
    busy_snapshot_[i] = cpus_[i]->busyTime();
  }
}

const std::vector<Utilization>& Cluster::sampleUtilization() {
  if (engine_) {
    // Probe against the barrier-coherent snapshot instead of live
    // cross-shard busyTime() reads: every value is from the same barrier
    // (< lookahead stale), identical for every worker-thread count.
    const SimTime now = sim_.now();
    const SimDuration window = now - last_sample_t_;
    for (std::size_t i = 0; i < cpus_.size(); ++i) {
      last_sample_[i] =
          window > SimDuration::zero()
              ? Utilization::fraction((busy_snapshot_[i] - sampled_busy_[i]) /
                                      window)
              : Utilization::zero();
      sampled_busy_[i] = busy_snapshot_[i];
    }
    last_sample_t_ = now;
  } else {
    for (std::size_t i = 0; i < probes_.size(); ++i) {
      last_sample_[i] = probes_[i].sample();
    }
  }
  // Invalidate, don't rebuild: periods with no management action never pay
  // for the index, and one rebuild serves every query until the next
  // sample.
  ++sample_generation_;
  ++samples_taken_;
  return last_sample_;
}

void Cluster::samplePartitionInto(std::size_t lo, std::size_t hi,
                                  std::vector<Utilization>& out) {
  RTDRM_ASSERT(lo < hi && hi <= cpus_.size());
  out.resize(hi - lo);
  if (engine_) {
    // Per-node windows (not the global last_sample_t_): partitions sample
    // on their own cadence and must not shear each other's windows.
    const SimTime now = sim_.now();
    for (std::size_t i = lo; i < hi; ++i) {
      const SimDuration window = now - part_sample_t_[i];
      out[i - lo] =
          window > SimDuration::zero()
              ? Utilization::fraction((busy_snapshot_[i] - sampled_busy_[i]) /
                                      window)
              : Utilization::zero();
      sampled_busy_[i] = busy_snapshot_[i];
      part_sample_t_[i] = now;
    }
  } else {
    for (std::size_t i = lo; i < hi; ++i) {
      out[i - lo] = probes_[i].sample();
    }
  }
  ++samples_taken_;
}

void Cluster::applyGossipSample(ProcessorId id, Utilization u) {
  RTDRM_ASSERT(id.value < last_sample_.size());
  last_sample_[id.value] = u;
  ++sample_generation_;
}

Utilization Cluster::lastUtilization(ProcessorId id) const {
  RTDRM_ASSERT(id.value < last_sample_.size());
  return last_sample_[id.value];
}

Utilization Cluster::meanUtilization() const {
  // Down nodes are out of the capacity pool; the mean is over survivors.
  double sum = 0.0;
  std::size_t up = 0;
  for (std::size_t i = 0; i < last_sample_.size(); ++i) {
    if (!nodeUp(i)) {
      continue;
    }
    sum += last_sample_[i].value();
    ++up;
  }
  if (up == 0) {
    return Utilization::zero();
  }
  return Utilization::fraction(sum / static_cast<double>(up));
}

void Cluster::rebuildIndex() const {
  // Down nodes are masked out entirely: the heap only ever holds
  // placeable capacity, so every query path inherits the masking.
  util_heap_.clear();
  for (std::size_t i = 0; i < last_sample_.size(); ++i) {
    if (!nodeUp(i)) {
      continue;
    }
    util_heap_.push_back(
        {last_sample_[i].value(), static_cast<std::uint32_t>(i)});
  }
  const std::size_t n = util_heap_.size();
  // Bottom-up 4-ary heapify: sift down every internal node.
  if (n > 1) {
    for (std::size_t root = (n - 2) / 4 + 1; root-- > 0;) {
      std::size_t hole = root;
      const UtilEntry moved = util_heap_[hole];
      while (true) {
        const std::size_t first_child = 4 * hole + 1;
        if (first_child >= n) {
          break;
        }
        std::size_t best = first_child;
        const std::size_t last_child = std::min(first_child + 4, n);
        for (std::size_t c = first_child + 1; c < last_child; ++c) {
          if (keyLess(util_heap_[c], util_heap_[best])) {
            best = c;
          }
        }
        if (!keyLess(util_heap_[best], moved)) {
          break;
        }
        util_heap_[hole] = util_heap_[best];
        hole = best;
      }
      util_heap_[hole] = moved;
    }
  }
  index_generation_ = sample_generation_;
  ++index_rebuilds_;
}

std::optional<ProcessorId> Cluster::leastUtilizedScan(
    const std::vector<ProcessorId>& exclude) const {
  std::optional<ProcessorId> best;
  double best_u = 0.0;
  for (std::uint32_t i = 0; i < cpus_.size(); ++i) {
    const ProcessorId id{i};
    if (!nodeUp(i) ||
        std::find(exclude.begin(), exclude.end(), id) != exclude.end()) {
      continue;
    }
    const double u = last_sample_[i].value();
    if (!best || u < best_u) {
      best = id;
      best_u = u;
    }
  }
  return best;
}

std::optional<ProcessorId> Cluster::leastUtilized(
    const std::vector<ProcessorId>& exclude) const {
  if (!index_enabled_) {
    return leastUtilizedScan(exclude);
  }
  if (index_generation_ != sample_generation_) {
    rebuildIndex();
  }
  std::fill(exclude_bits_.begin(), exclude_bits_.end(), 0);
  for (const ProcessorId p : exclude) {
    if (p.value < cpus_.size()) {  // out-of-range ids can never match
      exclude_bits_[p.value >> 6] |= std::uint64_t{1} << (p.value & 63);
    }
  }

  // Best-first descent: the frontier holds roots of unexplored subtrees,
  // ordered by key. Every unexplored entry lies below some frontier root
  // and so has a key >= its root's; hence the first non-excluded entry
  // popped is the global minimum over all non-excluded nodes. Each
  // excluded pop expands at most 4 children, so the work is proportional
  // to the excluded entries actually in the way, not to the cluster size.
  const auto greater = [this](std::uint32_t a, std::uint32_t b) {
    return keyLess(util_heap_[b], util_heap_[a]);
  };
  frontier_.clear();
  const std::size_t n = util_heap_.size();
  if (n == 0) {  // every node down: nothing placeable
    return std::nullopt;
  }
  frontier_.push_back(0);
  while (!frontier_.empty()) {
    std::pop_heap(frontier_.begin(), frontier_.end(), greater);
    const std::uint32_t i = frontier_.back();
    frontier_.pop_back();
    const UtilEntry& e = util_heap_[i];
    if ((exclude_bits_[e.id >> 6] >> (e.id & 63) & 1u) == 0) {
      return ProcessorId{e.id};
    }
    const std::size_t first_child = 4 * static_cast<std::size_t>(i) + 1;
    const std::size_t last_child = std::min(first_child + 4, n);
    for (std::size_t c = first_child; c < last_child; ++c) {
      frontier_.push_back(static_cast<std::uint32_t>(c));
      std::push_heap(frontier_.begin(), frontier_.end(), greater);
    }
  }
  return std::nullopt;
}

Cluster::UtilizationCursor::UtilizationCursor(
    const Cluster& cluster, const std::vector<ProcessorId>& exclude)
    : cluster_(&cluster), use_index_(cluster.index_enabled_) {
  if (!use_index_) {
    // Reference mode reproduces the seed's cost model: one full scan per
    // yield, against the accumulated exclusion list.
    scan_exclude_ = exclude;
    return;
  }
  if (cluster.index_generation_ != cluster.sample_generation_) {
    cluster.rebuildIndex();
  }
  generation_ = cluster.sample_generation_;
  exclude_bits_.assign(cluster.exclude_bits_.size(), 0);
  for (const ProcessorId p : exclude) {
    if (p.value < cluster.cpus_.size()) {  // out-of-range ids never match
      exclude_bits_[p.value >> 6] |= std::uint64_t{1} << (p.value & 63);
    }
  }
  if (!cluster.util_heap_.empty()) {
    frontier_.push_back(0);
  }
}

std::optional<ProcessorId> Cluster::UtilizationCursor::next() {
  ++cluster_->cursor_advances_;
  if (!use_index_) {
    const auto got = cluster_->leastUtilizedScan(scan_exclude_);
    if (got) {
      scan_exclude_.push_back(*got);
    }
    return got;
  }
  RTDRM_ASSERT_MSG(generation_ == cluster_->sample_generation_,
                   "utilization cursor outlived its sample");
  // Best-first over the 4-ary heap, children pushed on every pop: keys
  // come out in globally sorted (u, id) order, each heap node is expanded
  // exactly once, and excluded or already-yielded entries are simply
  // skipped — so yield k+1 is the minimum over nodes outside
  // (exclude ∪ yields 1..k), which is precisely what a fresh
  // leastUtilized() with that grown exclusion set would return.
  const auto& heap = cluster_->util_heap_;
  const auto greater = [&heap](std::uint32_t a, std::uint32_t b) {
    return keyLess(heap[b], heap[a]);
  };
  const std::size_t n = heap.size();
  while (!frontier_.empty()) {
    std::pop_heap(frontier_.begin(), frontier_.end(), greater);
    const std::uint32_t i = frontier_.back();
    frontier_.pop_back();
    const std::size_t first_child = 4 * static_cast<std::size_t>(i) + 1;
    const std::size_t last_child = std::min(first_child + 4, n);
    for (std::size_t c = first_child; c < last_child; ++c) {
      frontier_.push_back(static_cast<std::uint32_t>(c));
      std::push_heap(frontier_.begin(), frontier_.end(), greater);
    }
    const UtilEntry& e = heap[i];
    if ((exclude_bits_[e.id >> 6] >> (e.id & 63) & 1u) == 0) {
      return ProcessorId{e.id};
    }
  }
  return std::nullopt;
}

const std::vector<ProcessorId>& Cluster::belowUtilization(
    Utilization limit) const {
  below_scratch_.clear();
  const double lim = limit.value();
  if (!index_enabled_) {
    for (std::uint32_t i = 0; i < cpus_.size(); ++i) {
      if (nodeUp(i) && last_sample_[i].value() < lim) {
        below_scratch_.push_back(ProcessorId{i});
      }
    }
    return below_scratch_;
  }
  if (index_generation_ != sample_generation_) {
    rebuildIndex();
  }
  // Pruned DFS: a subtree whose root is already at or above the limit
  // cannot contain a below-limit node. Matches are then put in ascending
  // id order — the order Fig. 7 adds them in, and the order the scan
  // produced — so downstream decisions are unchanged.
  frontier_.clear();
  const std::size_t n = util_heap_.size();
  if (n > 0 && util_heap_[0].u < lim) {
    frontier_.push_back(0);
  }
  while (!frontier_.empty()) {
    const std::uint32_t i = frontier_.back();
    frontier_.pop_back();
    below_scratch_.push_back(ProcessorId{util_heap_[i].id});
    const std::size_t first_child = 4 * static_cast<std::size_t>(i) + 1;
    const std::size_t last_child = std::min(first_child + 4, n);
    for (std::size_t c = first_child; c < last_child; ++c) {
      if (util_heap_[c].u < lim) {
        frontier_.push_back(static_cast<std::uint32_t>(c));
      }
    }
  }
  std::sort(below_scratch_.begin(), below_scratch_.end());
  return below_scratch_;
}

void Cluster::exportMetrics(obs::MetricsRegistry& reg) const {
  reg.counter("node.index_rebuilds").set(index_rebuilds_);
  reg.counter("node.cursor_advances").set(cursor_advances_);
  reg.counter("node.samples_taken").set(samples_taken_);
  reg.gauge("node.up_count").set(static_cast<double>(upCount()));
  reg.gauge("node.mean_utilization").set(meanUtilization().value());
}

}  // namespace rtdrm::node
