#include "node/cluster.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace rtdrm::node {

Cluster::Cluster(sim::Simulator& simulator, std::size_t node_count,
                 ProcessorConfig cpu_config,
                 const std::vector<double>& speeds)
    : sim_(simulator) {
  RTDRM_ASSERT(node_count > 0);
  RTDRM_ASSERT_MSG(speeds.empty() || speeds.size() == node_count,
                   "speeds must be empty or one per node");
  cpus_.reserve(node_count);
  probes_.reserve(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    ProcessorConfig cfg = cpu_config;
    if (!speeds.empty()) {
      cfg.speed = speeds[i];
    }
    cpus_.push_back(std::make_unique<Processor>(
        simulator, ProcessorId{static_cast<std::uint32_t>(i)}, cfg));
    probes_.emplace_back(simulator, *cpus_.back());
  }
  last_sample_.assign(node_count, Utilization::zero());
}

Processor& Cluster::processor(ProcessorId id) {
  RTDRM_ASSERT(id.value < cpus_.size());
  return *cpus_[id.value];
}

const Processor& Cluster::processor(ProcessorId id) const {
  RTDRM_ASSERT(id.value < cpus_.size());
  return *cpus_[id.value];
}

std::vector<ProcessorId> Cluster::ids() const {
  std::vector<ProcessorId> out;
  out.reserve(cpus_.size());
  for (std::uint32_t i = 0; i < cpus_.size(); ++i) {
    out.push_back(ProcessorId{i});
  }
  return out;
}

void Cluster::attachBackgroundLoad(const RngStreams& streams,
                                   BackgroundLoadConfig config) {
  RTDRM_ASSERT_MSG(bg_.empty(), "background load already attached");
  bg_.reserve(cpus_.size());
  for (std::size_t i = 0; i < cpus_.size(); ++i) {
    bg_.push_back(std::make_unique<BackgroundLoad>(
        sim_, *cpus_[i], streams.get("bg-load", i), config));
  }
}

BackgroundLoad& Cluster::backgroundLoad(ProcessorId id) {
  RTDRM_ASSERT(hasBackgroundLoad() && id.value < bg_.size());
  return *bg_[id.value];
}

const std::vector<Utilization>& Cluster::sampleUtilization() {
  for (std::size_t i = 0; i < probes_.size(); ++i) {
    last_sample_[i] = probes_[i].sample();
  }
  return last_sample_;
}

Utilization Cluster::lastUtilization(ProcessorId id) const {
  RTDRM_ASSERT(id.value < last_sample_.size());
  return last_sample_[id.value];
}

Utilization Cluster::meanUtilization() const {
  double sum = 0.0;
  for (const auto& u : last_sample_) {
    sum += u.value();
  }
  return Utilization::fraction(sum / static_cast<double>(last_sample_.size()));
}

std::optional<ProcessorId> Cluster::leastUtilized(
    const std::vector<ProcessorId>& exclude) const {
  std::optional<ProcessorId> best;
  double best_u = 0.0;
  for (std::uint32_t i = 0; i < cpus_.size(); ++i) {
    const ProcessorId id{i};
    if (std::find(exclude.begin(), exclude.end(), id) != exclude.end()) {
      continue;
    }
    const double u = last_sample_[i].value();
    if (!best || u < best_u) {
      best = id;
      best_u = u;
    }
  }
  return best;
}

}  // namespace rtdrm::node
