// Open-loop background CPU load generator.
//
// The paper profiles subtask latency "at a set of internal resource
// utilizations" — on the real testbed other programs provide that load; in
// the simulator this generator injects Poisson job arrivals whose offered
// load equals a target utilization. Under round-robin sharing the measured
// subtask then experiences realistic latency inflation (≈ 1/(1-u) in the
// processor-sharing limit), which is what regression eq. (3) fits.
#pragma once

#include <memory>

#include "common/rng.hpp"
#include "node/processor.hpp"
#include "sim/simulator.hpp"

namespace rtdrm::node {

struct BackgroundLoadConfig {
  /// Mean service demand of one background job.
  SimDuration mean_service = SimDuration::millis(4.0);
  /// Job demand distribution: exponential when true, else uniform in
  /// [0.5, 1.5] x mean.
  bool exponential_service = true;
  /// Scheduling priority of background jobs (kPriority nodes only; higher
  /// value = runs after more important work).
  int priority = 0;
};

class BackgroundLoad {
 public:
  BackgroundLoad(sim::Simulator& simulator, Processor& cpu, Xoshiro256 rng,
                 BackgroundLoadConfig config = {});
  ~BackgroundLoad();
  BackgroundLoad(const BackgroundLoad&) = delete;
  BackgroundLoad& operator=(const BackgroundLoad&) = delete;

  /// Sets the offered load. Zero (the default) stops arrivals. Takes effect
  /// from the next inter-arrival draw. Values are clamped to [0, 0.95] —
  /// open-loop load at >= 1 would grow the queue without bound.
  void setTarget(Utilization target);
  Utilization target() const { return target_; }

  std::uint64_t jobsInjected() const { return injected_; }

 private:
  void armNextArrival();
  void onArrival();

  sim::Simulator& sim_;
  Processor& cpu_;
  Xoshiro256 rng_;
  BackgroundLoadConfig config_;
  Utilization target_ = Utilization::zero();
  bool armed_ = false;
  sim::EventId pending_{};
  std::uint64_t injected_ = 0;
};

}  // namespace rtdrm::node
