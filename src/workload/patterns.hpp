// External-workload patterns (paper §5.2, Fig. 8).
//
// The workload is the number of sensor reports ("tracks") the task must
// process in a period. The paper evaluates three shapes between a minimum
// and maximum workload: an increasing ramp, a decreasing ramp, and a
// triangular (alternating) pattern. Additional shapes (step, sine, random
// walk, burst) are provided for the extension studies.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace rtdrm::workload {

/// Deterministic mapping from period index to offered workload.
class Pattern {
 public:
  virtual ~Pattern() = default;
  virtual DataSize at(std::uint64_t period) const = 0;
  virtual std::string name() const = 0;
};

/// Common bounds for the Fig. 8 patterns.
struct RampParams {
  DataSize min_workload = DataSize::tracks(500);
  DataSize max_workload = DataSize::tracks(10000);
  /// Periods to traverse min -> max (or max -> min).
  std::uint64_t ramp_periods = 30;
};

/// Starts at min, climbs linearly to max, then holds max.
class IncreasingRamp final : public Pattern {
 public:
  explicit IncreasingRamp(RampParams p) : p_(p) {}
  DataSize at(std::uint64_t period) const override;
  std::string name() const override { return "increasing-ramp"; }

 private:
  RampParams p_;
};

/// Starts at max, descends linearly to min, then holds min.
class DecreasingRamp final : public Pattern {
 public:
  explicit DecreasingRamp(RampParams p) : p_(p) {}
  DataSize at(std::uint64_t period) const override;
  std::string name() const override { return "decreasing-ramp"; }

 private:
  RampParams p_;
};

/// Alternates min -> max -> min -> ... indefinitely (the paper's
/// "fluctuating" pattern).
class Triangular final : public Pattern {
 public:
  explicit Triangular(RampParams p) : p_(p) {}
  DataSize at(std::uint64_t period) const override;
  std::string name() const override { return "triangular"; }

 private:
  RampParams p_;
};

/// Constant workload.
class Constant final : public Pattern {
 public:
  explicit Constant(DataSize level) : level_(level) {}
  DataSize at(std::uint64_t) const override { return level_; }
  std::string name() const override { return "constant"; }

 private:
  DataSize level_;
};

/// Jumps min -> max at `step_at` and stays there.
class Step final : public Pattern {
 public:
  Step(DataSize low, DataSize high, std::uint64_t step_at)
      : low_(low), high_(high), step_at_(step_at) {}
  DataSize at(std::uint64_t period) const override {
    return period < step_at_ ? low_ : high_;
  }
  std::string name() const override { return "step"; }

 private:
  DataSize low_;
  DataSize high_;
  std::uint64_t step_at_;
};

/// Sinusoid between min and max with the given period length.
class Sine final : public Pattern {
 public:
  Sine(RampParams p, std::uint64_t cycle_periods)
      : p_(p), cycle_(cycle_periods) {}
  DataSize at(std::uint64_t period) const override;
  std::string name() const override { return "sine"; }

 private:
  RampParams p_;
  std::uint64_t cycle_;
};

/// Bounded random walk between min and max (deterministic per seed).
/// Precomputes its trajectory lazily so at() stays a pure function.
class RandomWalk final : public Pattern {
 public:
  RandomWalk(RampParams p, DataSize max_step, Xoshiro256 rng);
  DataSize at(std::uint64_t period) const override;
  std::string name() const override { return "random-walk"; }

 private:
  RampParams p_;
  DataSize max_step_;
  mutable Xoshiro256 rng_;
  mutable std::vector<double> trajectory_;
};

/// Baseline workload with periodic bursts ("raids") of burst_len periods
/// every burst_every periods.
class Burst final : public Pattern {
 public:
  Burst(DataSize baseline, DataSize burst_level, std::uint64_t burst_every,
        std::uint64_t burst_len)
      : baseline_(baseline), burst_(burst_level), every_(burst_every),
        len_(burst_len) {}
  DataSize at(std::uint64_t period) const override {
    return (period % every_) < len_ ? burst_ : baseline_;
  }
  std::string name() const override { return "burst"; }

 private:
  DataSize baseline_;
  DataSize burst_;
  std::uint64_t every_;
  std::uint64_t len_;
};

/// Concatenation of phases: each (pattern, length) segment plays in order,
/// with each segment seeing a local period index starting at 0; the last
/// segment holds forever. Mission scripts (calm -> raid -> recovery) are
/// built from this instead of hand-rolled lambdas. Segment patterns must
/// outlive the sequence.
class Sequence final : public Pattern {
 public:
  struct Segment {
    const Pattern* pattern = nullptr;
    std::uint64_t periods = 0;  ///< ignored for the final segment
  };

  explicit Sequence(std::vector<Segment> segments);
  DataSize at(std::uint64_t period) const override;
  std::string name() const override { return "sequence"; }

 private:
  std::vector<Segment> segments_;
};

/// Multiplicative lognormal jitter around any base pattern — the paper's
/// "event arrivals have nondeterministic distributions" made concrete.
/// at(c) = base.at(c) * X_c with E[X_c] = 1; each period's factor is a pure
/// function of (seed, c), so the pattern stays deterministic and
/// random-access. The base pattern must outlive the wrapper.
class Jittered final : public Pattern {
 public:
  Jittered(const Pattern& base, double sigma, std::uint64_t seed)
      : base_(base), sigma_(sigma), seed_(seed) {}
  DataSize at(std::uint64_t period) const override;
  std::string name() const override { return base_.name() + "+jitter"; }

 private:
  const Pattern& base_;
  double sigma_;
  std::uint64_t seed_;
};

/// The three Fig. 8 patterns by name ("increasing" | "decreasing" |
/// "triangular").
std::unique_ptr<Pattern> makeFig8Pattern(const std::string& which,
                                         RampParams params);

}  // namespace rtdrm::workload
