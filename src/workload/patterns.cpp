#include "workload/patterns.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/assert.hpp"

namespace rtdrm::workload {

namespace {
double lerp(double a, double b, double t) { return a + (b - a) * t; }
}  // namespace

DataSize IncreasingRamp::at(std::uint64_t period) const {
  RTDRM_ASSERT(p_.ramp_periods > 0);
  const double t = std::min(
      1.0, static_cast<double>(period) / static_cast<double>(p_.ramp_periods));
  return DataSize::tracks(
      lerp(p_.min_workload.count(), p_.max_workload.count(), t));
}

DataSize DecreasingRamp::at(std::uint64_t period) const {
  RTDRM_ASSERT(p_.ramp_periods > 0);
  const double t = std::min(
      1.0, static_cast<double>(period) / static_cast<double>(p_.ramp_periods));
  return DataSize::tracks(
      lerp(p_.max_workload.count(), p_.min_workload.count(), t));
}

DataSize Triangular::at(std::uint64_t period) const {
  RTDRM_ASSERT(p_.ramp_periods > 0);
  const std::uint64_t cycle = 2 * p_.ramp_periods;
  const std::uint64_t phase = period % cycle;
  const double t =
      phase < p_.ramp_periods
          ? static_cast<double>(phase) / static_cast<double>(p_.ramp_periods)
          : 1.0 - static_cast<double>(phase - p_.ramp_periods) /
                      static_cast<double>(p_.ramp_periods);
  return DataSize::tracks(
      lerp(p_.min_workload.count(), p_.max_workload.count(), t));
}

DataSize Sine::at(std::uint64_t period) const {
  RTDRM_ASSERT(cycle_ > 0);
  const double phase = 2.0 * std::numbers::pi *
                       static_cast<double>(period % cycle_) /
                       static_cast<double>(cycle_);
  const double t = 0.5 - 0.5 * std::cos(phase);
  return DataSize::tracks(
      lerp(p_.min_workload.count(), p_.max_workload.count(), t));
}

RandomWalk::RandomWalk(RampParams p, DataSize max_step, Xoshiro256 rng)
    : p_(p), max_step_(max_step), rng_(rng) {
  RTDRM_ASSERT(max_step_.count() > 0.0);
}

DataSize RandomWalk::at(std::uint64_t period) const {
  while (trajectory_.size() <= period) {
    const double prev = trajectory_.empty()
                            ? 0.5 * (p_.min_workload.count() +
                                     p_.max_workload.count())
                            : trajectory_.back();
    const double step = rng_.uniform(-max_step_.count(), max_step_.count());
    trajectory_.push_back(std::clamp(prev + step, p_.min_workload.count(),
                                     p_.max_workload.count()));
  }
  return DataSize::tracks(trajectory_[period]);
}

Sequence::Sequence(std::vector<Segment> segments)
    : segments_(std::move(segments)) {
  RTDRM_ASSERT_MSG(!segments_.empty(), "sequence needs at least one segment");
  for (const Segment& s : segments_) {
    RTDRM_ASSERT(s.pattern != nullptr);
  }
}

DataSize Sequence::at(std::uint64_t period) const {
  std::uint64_t local = period;
  for (std::size_t i = 0; i + 1 < segments_.size(); ++i) {
    if (local < segments_[i].periods) {
      return segments_[i].pattern->at(local);
    }
    local -= segments_[i].periods;
  }
  return segments_.back().pattern->at(local);
}

DataSize Jittered::at(std::uint64_t period) const {
  if (sigma_ <= 0.0) {
    return base_.at(period);
  }
  // Derive the period's factor from a dedicated generator so at() stays a
  // pure, random-access function.
  SplitMix64 sm(seed_ ^ (period * 0x9e3779b97f4a7c15ULL + 1));
  Xoshiro256 rng(sm.next());
  const double factor = rng.lognormalUnitMean(sigma_);
  return DataSize::tracks(std::max(0.0, base_.at(period).count() * factor));
}

std::unique_ptr<Pattern> makeFig8Pattern(const std::string& which,
                                         RampParams params) {
  if (which == "increasing") {
    return std::make_unique<IncreasingRamp>(params);
  }
  if (which == "decreasing") {
    return std::make_unique<DecreasingRamp>(params);
  }
  if (which == "triangular") {
    return std::make_unique<Triangular>(params);
  }
  RTDRM_ASSERT_MSG(false, "unknown Fig. 8 pattern name");
  return nullptr;
}

}  // namespace rtdrm::workload
