// Workload generators beyond the paper's Fig. 8 ramps.
//
// The paper evaluates smooth ramp/triangular track counts; real radar and
// sensor-fusion workloads are burstier. This module adds three stressor
// families for the extension studies:
//
//   * ParetoArrivals    — heavy-tailed per-period track counts (Lomax
//                         excess over a floor, tail index alpha), the
//                         "rare giant scan" regime;
//   * CorrelatedSurge   — multiple sensors sharing global surge events,
//                         so per-sensor workloads spike *together* with a
//                         tunable join probability (the cross-sensor
//                         correlation knob);
//   * ContenderTraffic  — K co-hosted flows posting periodic messages on
//                         the network substrate, contending with the
//                         pipelines for fabric capacity without consuming
//                         CPU.
//
// All three are deterministic pure functions of (seed, indices): every
// draw derives from a SplitMix64-keyed generator, so values are
// random-access, thread-count independent, and replay byte-identically —
// the property the generator test suite pins.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "net/network_model.hpp"
#include "sim/simulator.hpp"
#include "workload/patterns.hpp"

namespace rtdrm::workload {

/// Which workload family an episode offers its pipelines.
enum class WorkloadMix {
  kPaper,   ///< the paper's ramp patterns, unchanged
  kPareto,  ///< heavy-tailed per-period track counts
  kSurge,   ///< correlated multi-sensor surges
  kMulti,   ///< paper pattern + co-hosted flows contending for the fabric
};

const char* workloadMixName(WorkloadMix mix);
/// Parses "paper" | "pareto" | "surge" | "multi". Returns false (leaving
/// `out` untouched) on anything else.
bool parseWorkloadMix(const std::string& s, WorkloadMix* out);

struct ParetoParams {
  /// Every period offers at least this much.
  DataSize floor = DataSize::tracks(500);
  /// Scale of the heavy-tailed excess (the Lomax sigma).
  DataSize scale = DataSize::tracks(1500);
  /// Tail index alpha: smaller = heavier tail. 1 < alpha < 2 gives finite
  /// mean but infinite variance — the interesting regime for admission
  /// control.
  double tail_index = 1.5;
  /// Safety ceiling (keeps pathological draws from exploding a run while
  /// staying far above anything the tail-index estimator samples).
  DataSize cap = DataSize::tracks(1e7);
};

/// Heavy-tailed track arrivals: at(c) = floor + Lomax(scale, alpha) excess,
/// capped. The excess survival function is (1 + x/scale)^-alpha, so the
/// upper tail decays polynomially with index alpha — a Hill estimator over
/// the sample maxima recovers alpha (the generator suite checks this).
/// Each period's draw is a pure function of (seed, period).
class ParetoArrivals final : public Pattern {
 public:
  ParetoArrivals(ParetoParams p, std::uint64_t seed) : p_(p), seed_(seed) {}
  DataSize at(std::uint64_t period) const override;
  std::string name() const override { return "pareto"; }
  const ParetoParams& params() const { return p_; }

 private:
  ParetoParams p_;
  std::uint64_t seed_;
};

struct SurgeParams {
  DataSize baseline = DataSize::tracks(1000);
  /// Workload added at the peak of a fresh surge a sensor joined.
  DataSize amplitude = DataSize::tracks(6000);
  /// Per-period probability that a new global surge event starts.
  double start_probability = 0.08;
  /// Probability each sensor joins a given surge — the cross-sensor
  /// correlation knob (1.0 = all sensors spike in lockstep, 0.0 =
  /// independent baselines).
  double join_probability = 0.8;
  /// Geometric per-period decay of a surge's contribution.
  double decay = 0.6;
  /// Periods after which a surge's contribution is truncated to zero
  /// (keeps at() a pure O(window) function of the period index).
  std::uint64_t window = 8;
};

/// Correlated multi-sensor surges: global events shared by all sensors,
/// each sensor joining per-event with `join_probability`. Sensor j's
/// workload at period c is
///
///   baseline + amplitude * sum over surge starts s in (c-window, c] of
///                          started(s) * joins(j, s) * decay^(c-s)
///
/// where started() and joins() are pure coin flips keyed on (seed, s) and
/// (seed, s, j). Sensors correlate exactly because they share started().
class CorrelatedSurge {
 public:
  CorrelatedSurge(SurgeParams p, std::size_t sensor_count,
                  std::uint64_t seed);

  std::size_t sensorCount() const { return sensors_; }
  const SurgeParams& params() const { return p_; }
  DataSize sensorAt(std::size_t sensor, std::uint64_t period) const;
  /// Pattern adapter for one sensor (must not outlive this generator).
  std::unique_ptr<Pattern> sensorPattern(std::size_t sensor) const;
  /// Fusion view: the sum over every sensor — what a track-fusion pipeline
  /// ingesting all sensors sees per period (must not outlive this
  /// generator).
  std::unique_ptr<Pattern> fusedPattern() const;

 private:
  bool surgeStarts(std::uint64_t period) const;
  bool sensorJoins(std::size_t sensor, std::uint64_t start) const;

  SurgeParams p_;
  std::size_t sensors_;
  std::uint64_t seed_;
};

struct ContenderConfig {
  /// Number of co-hosted flows.
  std::size_t flows = 2;
  /// Posting cadence per flow.
  SimDuration period = SimDuration::millis(25.0);
  /// Mean payload per post (lognormal-jittered, unit mean).
  Bytes payload = Bytes::of(20000.0);
  double jitter_sigma = 0.35;
  std::uint64_t seed = 1;
};

/// K co-hosted flows posting periodic cross-node messages on the network
/// substrate — fabric contention without CPU cost. Flow endpoints are
/// fixed per-flow pure draws; per-post payload jitter is a pure function
/// of (seed, flow, tick), so contender traffic replays byte-identically
/// and never perturbs any other component's RNG stream.
class ContenderTraffic {
 public:
  ContenderTraffic(sim::Simulator& simulator, net::NetworkModel& net,
                   std::size_t node_count, ContenderConfig config);

  /// Begin posting (first posts after one period). Call at most once.
  void start();
  std::uint64_t messagesPosted() const { return posted_; }
  const ContenderConfig& config() const { return config_; }

 private:
  void post(std::size_t flow, std::uint64_t tick);

  sim::Simulator& sim_;
  net::NetworkModel& net_;
  std::size_t node_count_;
  ContenderConfig config_;
  bool started_ = false;
  std::uint64_t posted_ = 0;
};

}  // namespace rtdrm::workload
