#include "workload/generators.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/assert.hpp"

namespace rtdrm::workload {

namespace {

constexpr std::uint64_t kGold = 0x9e3779b97f4a7c15ULL;

/// Keyed generator: a pure function of (seed, a, b, salt). Every consumer
/// uses a distinct salt so streams never collide across generator kinds.
Xoshiro256 keyedRng(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                    std::uint64_t salt) {
  SplitMix64 sm(seed ^ (a * kGold + salt));
  return Xoshiro256(sm.next() ^ (b * kGold));
}

}  // namespace

const char* workloadMixName(WorkloadMix mix) {
  switch (mix) {
    case WorkloadMix::kPaper:
      return "paper";
    case WorkloadMix::kPareto:
      return "pareto";
    case WorkloadMix::kSurge:
      return "surge";
    case WorkloadMix::kMulti:
      return "multi";
  }
  return "?";
}

bool parseWorkloadMix(const std::string& s, WorkloadMix* out) {
  if (s == "paper") {
    *out = WorkloadMix::kPaper;
    return true;
  }
  if (s == "pareto") {
    *out = WorkloadMix::kPareto;
    return true;
  }
  if (s == "surge") {
    *out = WorkloadMix::kSurge;
    return true;
  }
  if (s == "multi") {
    *out = WorkloadMix::kMulti;
    return true;
  }
  return false;
}

DataSize ParetoArrivals::at(std::uint64_t period) const {
  RTDRM_ASSERT(p_.tail_index > 0.0);
  Xoshiro256 rng = keyedRng(seed_, period, 0, 2);
  // Inverse-transform Lomax: U in (0, 1], excess = scale * (U^(-1/a) - 1).
  const double u = 1.0 - rng.uniform01();
  const double excess =
      p_.scale.count() * (std::pow(u, -1.0 / p_.tail_index) - 1.0);
  return DataSize::tracks(
      std::min(p_.cap.count(), p_.floor.count() + excess));
}

CorrelatedSurge::CorrelatedSurge(SurgeParams p, std::size_t sensor_count,
                                 std::uint64_t seed)
    : p_(p), sensors_(sensor_count), seed_(seed) {
  RTDRM_ASSERT(sensors_ > 0);
  RTDRM_ASSERT(p_.start_probability >= 0.0 && p_.start_probability <= 1.0);
  RTDRM_ASSERT(p_.join_probability >= 0.0 && p_.join_probability <= 1.0);
  RTDRM_ASSERT(p_.decay > 0.0 && p_.decay <= 1.0);
  RTDRM_ASSERT(p_.window >= 1);
}

bool CorrelatedSurge::surgeStarts(std::uint64_t period) const {
  Xoshiro256 rng = keyedRng(seed_, period, 0, 11);
  return rng.uniform01() < p_.start_probability;
}

bool CorrelatedSurge::sensorJoins(std::size_t sensor,
                                  std::uint64_t start) const {
  Xoshiro256 rng = keyedRng(seed_, start, sensor, 13);
  return rng.uniform01() < p_.join_probability;
}

DataSize CorrelatedSurge::sensorAt(std::size_t sensor,
                                   std::uint64_t period) const {
  RTDRM_ASSERT(sensor < sensors_);
  double level = p_.baseline.count();
  double weight = 1.0;  // decay^(period - start)
  for (std::uint64_t back = 0; back < p_.window && back <= period; ++back) {
    const std::uint64_t start = period - back;
    if (surgeStarts(start) && sensorJoins(sensor, start)) {
      level += p_.amplitude.count() * weight;
    }
    weight *= p_.decay;
  }
  return DataSize::tracks(level);
}

namespace {
class SensorView final : public Pattern {
 public:
  SensorView(const CorrelatedSurge& gen, std::size_t sensor)
      : gen_(gen), sensor_(sensor) {}
  DataSize at(std::uint64_t period) const override {
    return gen_.sensorAt(sensor_, period);
  }
  std::string name() const override {
    return "surge#" + std::to_string(sensor_);
  }

 private:
  const CorrelatedSurge& gen_;
  std::size_t sensor_;
};

class FusedView final : public Pattern {
 public:
  explicit FusedView(const CorrelatedSurge& gen) : gen_(gen) {}
  DataSize at(std::uint64_t period) const override {
    double total = 0.0;
    for (std::size_t j = 0; j < gen_.sensorCount(); ++j) {
      total += gen_.sensorAt(j, period).count();
    }
    return DataSize::tracks(total);
  }
  std::string name() const override { return "surge-fused"; }

 private:
  const CorrelatedSurge& gen_;
};
}  // namespace

std::unique_ptr<Pattern> CorrelatedSurge::sensorPattern(
    std::size_t sensor) const {
  RTDRM_ASSERT(sensor < sensors_);
  return std::make_unique<SensorView>(*this, sensor);
}

std::unique_ptr<Pattern> CorrelatedSurge::fusedPattern() const {
  return std::make_unique<FusedView>(*this);
}

ContenderTraffic::ContenderTraffic(sim::Simulator& simulator,
                                   net::NetworkModel& net,
                                   std::size_t node_count,
                                   ContenderConfig config)
    : sim_(simulator),
      net_(net),
      node_count_(node_count),
      config_(std::move(config)) {
  RTDRM_ASSERT(node_count_ > 0);
  RTDRM_ASSERT(config_.period > SimDuration::zero());
  RTDRM_ASSERT(config_.payload >= Bytes::zero());
}

void ContenderTraffic::start() {
  RTDRM_ASSERT_MSG(!started_, "contender traffic already started");
  started_ = true;
  for (std::size_t f = 0; f < config_.flows; ++f) {
    // Stagger flow phases across one period so the contenders don't all
    // slam the fabric at the same instant.
    const SimDuration phase = SimDuration::millis(
        config_.period.ms() *
        (1.0 + static_cast<double>(f) /
                   static_cast<double>(std::max<std::size_t>(
                       config_.flows, 1))));
    sim_.scheduleAfter(phase, [this, f] { post(f, 0); });
  }
}

void ContenderTraffic::post(std::size_t flow, std::uint64_t tick) {
  // Fixed per-flow endpoints; per-post payload jitter keyed on the tick.
  Xoshiro256 ep = keyedRng(config_.seed, flow, 0, 17);
  const std::size_t src =
      static_cast<std::size_t>(ep.uniformInt(
          0, static_cast<std::int64_t>(node_count_) - 1));
  const std::size_t dst =
      node_count_ > 1
          ? (src + 1 +
             static_cast<std::size_t>(ep.uniformInt(
                 0, static_cast<std::int64_t>(node_count_) - 2))) %
                node_count_
          : src;
  Xoshiro256 jitter = keyedRng(config_.seed, flow, tick, 19);
  const double factor = config_.jitter_sigma > 0.0
                            ? jitter.lognormalUnitMean(config_.jitter_sigma)
                            : 1.0;
  net::Message m;
  m.src = ProcessorId{src};
  m.dst = ProcessorId{dst};
  m.payload = Bytes::of(std::max(0.0, config_.payload.count() * factor));
  m.tag = "contender";
  net_.send(std::move(m));
  ++posted_;
  sim_.scheduleAfter(config_.period,
                     [this, flow, tick] { post(flow, tick + 1); });
}

}  // namespace rtdrm::workload
