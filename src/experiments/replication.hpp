// Replicated episodes with confidence intervals.
//
// The paper's Figs. 9-13 plot one experiment per point. For statements
// like "predictive beats non-predictive at workload W" to carry
// statistical weight, this extension re-runs each episode across
// independent seeds and reports mean, sample stddev, and a Student-t 95%
// confidence half-width for every metric.
#pragma once

#include <cstddef>

#include "experiments/episode.hpp"

namespace rtdrm::experiments {

struct ReplicatedMetric {
  double mean = 0.0;
  double stddev = 0.0;
  double ci95_half = 0.0;  ///< Student-t 95% half-width of the mean
  std::size_t n = 0;

  double lo() const { return mean - ci95_half; }
  double hi() const { return mean + ci95_half; }
};

struct ReplicatedResult {
  ReplicatedMetric missed_pct;
  ReplicatedMetric cpu_pct;
  ReplicatedMetric net_pct;
  ReplicatedMetric avg_replicas;
  ReplicatedMetric combined;
};

/// Two-sided 95% Student-t critical value for `df` degrees of freedom
/// (exact table through df = 30, 1.96 beyond).
double tCritical95(std::size_t df);

/// Summarizes a sample into a ReplicatedMetric.
ReplicatedMetric summarize(const RunningStats& stats);

/// Runs `replications` episodes with seeds base.scenario.seed + r, in
/// parallel. Requires replications >= 2.
ReplicatedResult runReplicatedEpisode(const task::TaskSpec& spec,
                                      const workload::Pattern& pattern,
                                      const core::PredictiveModels& models,
                                      AlgorithmKind algorithm,
                                      const EpisodeConfig& base,
                                      std::size_t replications,
                                      bool parallel = true);

/// True when the two means differ beyond their combined 95% intervals
/// (a conservative non-overlap test).
bool significantlyDifferent(const ReplicatedMetric& a,
                            const ReplicatedMetric& b);

}  // namespace rtdrm::experiments
