#include "experiments/replication.hpp"

#include <cmath>
#include <vector>

#include "common/assert.hpp"
#include "common/parallel.hpp"

namespace rtdrm::experiments {

double tCritical95(std::size_t df) {
  // Two-sided alpha = 0.05 critical values of Student's t.
  static constexpr double kTable[] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
      2.228,  2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
      2.093,  2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
      2.048,  2.045, 2.042};
  if (df == 0) {
    return 0.0;
  }
  if (df <= 30) {
    return kTable[df - 1];
  }
  return 1.96;
}

ReplicatedMetric summarize(const RunningStats& stats) {
  ReplicatedMetric out;
  out.n = stats.count();
  out.mean = stats.mean();
  out.stddev = stats.stddev();
  if (out.n >= 2) {
    out.ci95_half = tCritical95(out.n - 1) * out.stddev /
                    std::sqrt(static_cast<double>(out.n));
  }
  return out;
}

ReplicatedResult runReplicatedEpisode(const task::TaskSpec& spec,
                                      const workload::Pattern& pattern,
                                      const core::PredictiveModels& models,
                                      AlgorithmKind algorithm,
                                      const EpisodeConfig& base,
                                      std::size_t replications,
                                      bool parallel) {
  RTDRM_ASSERT_MSG(replications >= 2,
                   "confidence intervals need >= 2 replications");
  std::vector<EpisodeResult> runs(replications);
  parallelFor(
      replications,
      [&](std::size_t r) {
        EpisodeConfig cfg = base;
        cfg.scenario.seed = base.scenario.seed + r;
        runs[r] = runEpisode(spec, pattern, models, algorithm, cfg);
      },
      parallel ? 0 : 1);

  RunningStats missed;
  RunningStats cpu;
  RunningStats net;
  RunningStats replicas;
  RunningStats combined;
  for (const auto& r : runs) {
    missed.add(r.missed_pct);
    cpu.add(r.cpu_pct);
    net.add(r.net_pct);
    replicas.add(r.avg_replicas);
    combined.add(r.combined);
  }
  return ReplicatedResult{summarize(missed), summarize(cpu), summarize(net),
                          summarize(replicas), summarize(combined)};
}

bool significantlyDifferent(const ReplicatedMetric& a,
                            const ReplicatedMetric& b) {
  return a.hi() < b.lo() || b.hi() < a.lo();
}

}  // namespace rtdrm::experiments
