// One-stop model fitting for a task spec.
//
// Runs the execution-latency profiling campaign for every subtask and the
// buffer-delay campaign for the chain, then fits the paper's regression
// models. Benches fit once and reuse the result across a whole sweep (the
// paper likewise profiles once, offline).
#pragma once

#include <vector>

#include "core/models.hpp"
#include "profile/comm_profiler.hpp"
#include "profile/exec_profiler.hpp"
#include "regress/comm_model.hpp"
#include "regress/exec_model.hpp"
#include "task/spec.hpp"

namespace rtdrm::experiments {

struct FittedModelSet {
  core::PredictiveModels models;
  /// Per-subtask fit details (two-stage; index = stage).
  std::vector<regress::ExecModelFit> exec_fits;
  regress::BufferDelayFit comm_fit;
};

struct ModelFitConfig {
  profile::ExecProfileConfig exec{};
  profile::CommProfileConfig comm{};
  /// Link rate for the Dtrans term of the fitted CommDelayModel.
  BitRate link_rate = BitRate::mbps(100.0);
  /// Fit exec models with the paper's two-stage procedure (true) or the
  /// joint 6-parameter fit (false).
  bool two_stage = true;
  /// Profile subtasks in parallel (independent mini-simulations).
  bool parallel = true;
};

/// Sensible defaults: the paper's (d, u) grid for exec profiling and the
/// default workload grid for the buffer-delay campaign.
ModelFitConfig defaultModelFitConfig();

FittedModelSet fitAllModels(const task::TaskSpec& spec,
                            const ModelFitConfig& config);

}  // namespace rtdrm::experiments
