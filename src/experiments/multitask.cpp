#include "experiments/multitask.hpp"

#include <algorithm>
#include <memory>

#include "common/assert.hpp"

namespace rtdrm::experiments {

MultiTaskResult runMultiTaskEpisode(const task::TaskSpec& spec,
                                    const workload::Pattern& pattern,
                                    const core::PredictiveModels& models,
                                    AlgorithmKind algorithm,
                                    const MultiTaskConfig& config) {
  RTDRM_ASSERT(config.task_count >= 1);
  apps::Scenario scenario(config.episode.scenario);
  const std::size_t nodes = config.episode.scenario.node_count;

  core::WorkloadLedger ledger;

  // Per-task specs: identical structure, distinct names for the ledger and
  // traces.
  std::vector<task::TaskSpec> specs(config.task_count, spec);
  for (std::size_t t = 0; t < config.task_count; ++t) {
    specs[t].name = spec.name + "#" + std::to_string(t + 1);
  }

  std::vector<std::unique_ptr<core::ResourceManager>> managers;
  managers.reserve(config.task_count);
  for (std::size_t t = 0; t < config.task_count; ++t) {
    // Stagger initial placements so primaries don't pile onto node 0.
    std::vector<ProcessorId> homes;
    for (std::size_t s = 0; s < spec.stageCount(); ++s) {
      homes.push_back(ProcessorId{
          static_cast<std::uint32_t>((s + 2 * t) % nodes)});
    }

    std::unique_ptr<core::Allocator> allocator;
    if (algorithm == AlgorithmKind::kPredictive) {
      allocator = std::make_unique<core::PredictiveAllocator>(models);
    } else {
      allocator = std::make_unique<core::NonPredictiveAllocator>(
          config.episode.nonpredictive_threshold);
    }

    core::ManagerConfig mgr_cfg = config.episode.manager;
    // Exactly one manager owns the cluster's utilization sampling window.
    mgr_cfg.sample_cluster = (t == 0);

    const std::uint64_t phase = t * config.phase_shift;
    managers.push_back(std::make_unique<core::ResourceManager>(
        scenario.runtime(), specs[t], task::Placement(homes),
        [&pattern, phase](std::uint64_t c) { return pattern.at(c + phase); },
        std::move(allocator), models, mgr_cfg,
        scenario.streams().get("exec-noise", t)));
    managers.back()->attachLedger(ledger);
  }

  for (auto& m : managers) {
    m->start(scenario.sim().now());
  }
  scenario.runFor(spec.period *
                        static_cast<double>(config.episode.periods));
  for (auto& m : managers) {
    m->stop();
  }
  scenario.runFor(spec.period * config.episode.drain_periods);

  MultiTaskResult out;
  out.tasks.reserve(config.task_count);
  for (auto& m : managers) {
    EpisodeResult r;
    r.metrics = m->metrics();
    r.combined = r.metrics.combined(nodes);
    r.missed_pct = r.metrics.missedRatio() * 100.0;
    r.cpu_pct = r.metrics.cpu_utilization.mean() * 100.0;
    r.net_pct = r.metrics.net_utilization.mean() * 100.0;
    r.avg_replicas = r.metrics.replicas_per_subtask.mean();
    out.missed_pct += r.missed_pct;
    out.cpu_pct += r.cpu_pct;
    out.net_pct += r.net_pct;
    out.avg_replicas += r.avg_replicas;
    out.combined += r.combined;
    out.tasks.push_back(std::move(r));
  }
  const auto n = static_cast<double>(config.task_count);
  out.missed_pct /= n;
  out.cpu_pct /= n;
  out.net_pct /= n;
  out.avg_replicas /= n;
  out.combined /= n;
  return out;
}

MultiTaskResult runTaskSetEpisode(const std::vector<TaskSetMember>& members,
                                  AlgorithmKind algorithm,
                                  const EpisodeConfig& config,
                                  SimDuration horizon) {
  RTDRM_ASSERT(!members.empty());
  apps::Scenario scenario(config.scenario);
  const std::size_t nodes = config.scenario.node_count;
  core::WorkloadLedger ledger;

  std::vector<std::unique_ptr<core::ResourceManager>> managers;
  managers.reserve(members.size());
  for (std::size_t t = 0; t < members.size(); ++t) {
    const TaskSetMember& m = members[t];
    RTDRM_ASSERT(m.spec != nullptr && m.pattern != nullptr &&
                 m.models != nullptr);

    std::vector<ProcessorId> homes;
    for (std::size_t s = 0; s < m.spec->stageCount(); ++s) {
      homes.push_back(
          ProcessorId{static_cast<std::uint32_t>((s + 2 * t) % nodes)});
    }

    std::unique_ptr<core::Allocator> allocator;
    if (algorithm == AlgorithmKind::kPredictive) {
      allocator = std::make_unique<core::PredictiveAllocator>(*m.models);
    } else {
      allocator = std::make_unique<core::NonPredictiveAllocator>(
          config.nonpredictive_threshold);
    }

    core::ManagerConfig mgr_cfg = config.manager;
    mgr_cfg.sample_cluster = (t == 0);

    const workload::Pattern* pattern = m.pattern;
    const std::uint64_t phase = m.phase;
    managers.push_back(std::make_unique<core::ResourceManager>(
        scenario.runtime(), *m.spec, task::Placement(homes),
        [pattern, phase](std::uint64_t c) { return pattern->at(c + phase); },
        std::move(allocator), *m.models, mgr_cfg,
        scenario.streams().get("exec-noise", t)));
    managers.back()->attachLedger(ledger);
  }

  for (auto& m : managers) {
    m->start(scenario.sim().now());
  }
  scenario.runFor(horizon);
  for (auto& m : managers) {
    m->stop();
  }
  // Drain: three of the slowest member's periods.
  SimDuration slowest = members.front().spec->period;
  for (const auto& m : members) {
    slowest = std::max(slowest, m.spec->period);
  }
  scenario.runFor(slowest * 3.0);

  MultiTaskResult out;
  out.tasks.reserve(members.size());
  for (auto& m : managers) {
    EpisodeResult r;
    r.metrics = m->metrics();
    r.combined = r.metrics.combined(nodes);
    r.missed_pct = r.metrics.missedRatio() * 100.0;
    r.cpu_pct = r.metrics.cpu_utilization.mean() * 100.0;
    r.net_pct = r.metrics.net_utilization.mean() * 100.0;
    r.avg_replicas = r.metrics.replicas_per_subtask.mean();
    out.missed_pct += r.missed_pct;
    out.cpu_pct += r.cpu_pct;
    out.net_pct += r.net_pct;
    out.avg_replicas += r.avg_replicas;
    out.combined += r.combined;
    out.tasks.push_back(std::move(r));
  }
  const auto n = static_cast<double>(members.size());
  out.missed_pct /= n;
  out.cpu_pct /= n;
  out.net_pct /= n;
  out.avg_replicas /= n;
  out.combined /= n;
  return out;
}

}  // namespace rtdrm::experiments
