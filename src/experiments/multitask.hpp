// Multi-task evaluation episodes.
//
// The paper's model is a task *set* T = {T1, T2, ...} but its baseline
// evaluates one task (Table 1). This extension runs several periodic tasks
// on one shared cluster/segment, each under its own resource manager, all
// posting to a shared WorkloadLedger so eq. (5)'s sum over tasks is live.
// Task i's workload pattern is phase-shifted so peaks collide only
// partially — the interesting interference regime.
#pragma once

#include <vector>

#include "core/ledger.hpp"
#include "experiments/episode.hpp"

namespace rtdrm::experiments {

struct MultiTaskConfig {
  EpisodeConfig episode{};
  std::size_t task_count = 2;
  /// Pattern phase shift between consecutive tasks, in periods.
  std::uint64_t phase_shift = 15;
};

struct MultiTaskResult {
  /// Per-task metrics, index = task.
  std::vector<EpisodeResult> tasks;
  /// Means across tasks.
  double missed_pct = 0.0;
  double cpu_pct = 0.0;
  double net_pct = 0.0;
  double avg_replicas = 0.0;
  double combined = 0.0;
};

/// Runs `task_count` copies of `spec` (independent noise streams, shifted
/// patterns, staggered initial placements) under the given allocator kind.
MultiTaskResult runMultiTaskEpisode(const task::TaskSpec& spec,
                                    const workload::Pattern& pattern,
                                    const core::PredictiveModels& models,
                                    AlgorithmKind algorithm,
                                    const MultiTaskConfig& config);

/// One member of a *heterogeneous* task set: its own structure, pattern,
/// fitted models, and pattern phase. All pointers must outlive the call.
struct TaskSetMember {
  const task::TaskSpec* spec = nullptr;
  const workload::Pattern* pattern = nullptr;
  const core::PredictiveModels* models = nullptr;
  std::uint64_t phase = 0;
};

/// Runs a heterogeneous task set for `horizon` of simulated time on one
/// shared cluster. Tasks may have different periods; the *first* member's
/// manager drives the cluster's utilization sampling window, so list the
/// fastest task first for the freshest observations.
MultiTaskResult runTaskSetEpisode(const std::vector<TaskSetMember>& members,
                                  AlgorithmKind algorithm,
                                  const EpisodeConfig& config,
                                  SimDuration horizon);

}  // namespace rtdrm::experiments
