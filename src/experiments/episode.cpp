#include "experiments/episode.hpp"

#include "common/assert.hpp"
#include "common/parallel.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"

namespace rtdrm::experiments {

std::string algorithmName(AlgorithmKind kind) {
  return kind == AlgorithmKind::kPredictive ? "predictive" : "non-predictive";
}

EpisodeResult runEpisode(const task::TaskSpec& spec,
                         const workload::Pattern& pattern,
                         const core::PredictiveModels& models,
                         AlgorithmKind algorithm,
                         const EpisodeConfig& config) {
  apps::Scenario scenario(config.scenario);

  // Workload mix: kPaper offers the caller's pattern verbatim; the
  // generator mixes swap it (seeded from the scenario seed so paired
  // algorithm runs see identical arrivals); kMulti keeps the pattern and
  // adds contender flows below.
  std::unique_ptr<workload::CorrelatedSurge> surge_gen;
  std::unique_ptr<workload::Pattern> generated;
  const workload::Pattern* offered = &pattern;
  switch (config.workload_mix) {
    case workload::WorkloadMix::kPaper:
    case workload::WorkloadMix::kMulti:
      break;
    case workload::WorkloadMix::kPareto:
      generated = std::make_unique<workload::ParetoArrivals>(
          config.pareto, config.scenario.seed);
      offered = generated.get();
      break;
    case workload::WorkloadMix::kSurge:
      surge_gen = std::make_unique<workload::CorrelatedSurge>(
          config.surge, config.surge_sensors, config.scenario.seed);
      generated = surge_gen->fusedPattern();
      offered = generated.get();
      break;
  }
  std::unique_ptr<workload::ContenderTraffic> contenders;
  if (config.workload_mix == workload::WorkloadMix::kMulti) {
    workload::ContenderConfig cc = config.contenders;
    cc.seed ^= config.scenario.seed * 0x9e3779b97f4a7c15ULL;
    contenders = std::make_unique<workload::ContenderTraffic>(
        scenario.sim(), scenario.net(), config.scenario.node_count, cc);
  }

  // The pipeline reads the spec at job-submission time, so mutating this
  // local copy mid-run changes the ground truth for subsequent instances.
  task::TaskSpec live_spec = spec;
  if (config.drift_at_period > 0) {
    scenario.sim().scheduleAt(
        SimTime::zero() + spec.period *
                              static_cast<double>(config.drift_at_period),
        [&live_spec, scale = config.drift_cost_scale] {
          for (auto& st : live_spec.subtasks) {
            if (st.replicable) {
              st.cost.alpha_ms *= scale;
              st.cost.beta_ms *= scale;
            }
          }
        });
  }

  // Initial placement: chain spread round-robin over the nodes, one replica
  // per subtask (replication is the run-time system's job).
  std::vector<ProcessorId> homes;
  homes.reserve(spec.stageCount());
  for (std::size_t s = 0; s < spec.stageCount(); ++s) {
    homes.push_back(ProcessorId{
        static_cast<std::uint32_t>(s % config.scenario.node_count)});
  }

  std::unique_ptr<core::Allocator> allocator;
  if (algorithm == AlgorithmKind::kPredictive) {
    allocator = std::make_unique<core::PredictiveAllocator>(models);
  } else {
    allocator = std::make_unique<core::NonPredictiveAllocator>(
        config.nonpredictive_threshold);
  }

  core::ResourceManager manager(
      scenario.runtime(), live_spec, task::Placement(homes),
      [offered](std::uint64_t period) { return offered->at(period); },
      std::move(allocator), models, config.manager,
      scenario.streams().get("exec-noise"));

  if (config.obs != nullptr) {
    manager.attachObs(*config.obs);
  }

  // Decentralized plane (managers > 1 only — the default builds none of
  // this, keeping the legacy path bit-for-bit): gossiping endpoints, an
  // optional manager-crash schedule through the fault injector, and a
  // target-mode heartbeat detector driving elections.
  std::unique_ptr<core::ManagementPlane> plane;
  std::unique_ptr<fault::FaultInjector> injector;
  std::unique_ptr<fault::FailureDetector> mgr_detector;
  if (config.plane.managers > 1) {
    plane = std::make_unique<core::ManagementPlane>(
        scenario.sim(), scenario.net(), scenario.cluster(),
        config.plane);
    plane->adopt(manager);
    if (config.obs != nullptr) {
      plane->attachObs(*config.obs);
    }
    if (config.manager_crash_at_period > 0) {
      fault::FaultPlan fp;
      fp.seed = config.scenario.seed;
      fault::ManagerCrashFault mc;
      mc.manager = config.manager_fault_target;
      mc.at = SimTime::zero() +
              spec.period * static_cast<double>(config.manager_crash_at_period);
      if (config.manager_restart_after_periods > 0.0) {
        mc.restart_at =
            mc.at + spec.period * config.manager_restart_after_periods;
      }
      fp.manager_crashes.push_back(mc);
      injector = std::make_unique<fault::FaultInjector>(
          scenario.sim(), scenario.cluster(), &scenario.net(),
          &scenario.clocks(), fp);
      injector->setManagerFaultTarget(
          config.plane.managers,
          [p = plane.get()](std::uint32_t m, bool up) {
            p->setManagerUp(m, up);
          });
      injector->arm();
    }
    std::vector<fault::DetectorTarget> targets;
    targets.reserve(config.plane.managers);
    for (std::uint32_t mi = 0;
         mi < static_cast<std::uint32_t>(config.plane.managers); ++mi) {
      targets.push_back(fault::DetectorTarget{
          mi, plane->hostOf(mi),
          [p = plane.get(), mi] { return p->endpointReachable(mi); }});
    }
    mgr_detector = std::make_unique<fault::FailureDetector>(
        scenario.sim(), scenario.net(), config.manager_detector,
        std::move(targets),
        [p = plane.get()](std::uint32_t m) { p->onManagerSuspected(m); },
        [p = plane.get()](std::uint32_t m) { p->onManagerRecovered(m); });
  }

  if (contenders != nullptr) {
    contenders->start();
  }
  manager.start(scenario.sim().now());
  if (plane != nullptr) {
    plane->start(scenario.sim().now());
    mgr_detector->start(scenario.sim().now());
  }
  scenario.runFor(spec.period * static_cast<double>(config.periods));
  manager.stop();
  if (mgr_detector != nullptr) {
    mgr_detector->stop();
  }
  scenario.runFor(spec.period * config.drain_periods);
  if (plane != nullptr) {
    plane->stop();
  }

  if (config.obs != nullptr) {
    scenario.sim().exportMetrics(config.obs->metrics);
    scenario.net().exportMetrics(config.obs->metrics);
    scenario.cluster().exportMetrics(config.obs->metrics);
    manager.exportMetrics(config.obs->metrics);
    if (plane != nullptr) {
      plane->exportMetrics(config.obs->metrics);
      mgr_detector->exportMetrics(config.obs->metrics);
    }
  }

  EpisodeResult out;
  out.metrics = manager.metrics();
  out.combined = out.metrics.combined(config.scenario.node_count);
  out.missed_pct = out.metrics.missedRatio() * 100.0;
  out.cpu_pct = out.metrics.cpu_utilization.mean() * 100.0;
  out.net_pct = out.metrics.net_utilization.mean() * 100.0;
  out.avg_replicas = out.metrics.replicas_per_subtask.mean();
  if (plane != nullptr) {
    out.decision_gap_ms = plane->decisionGapMs();
    out.elections = plane->elections();
    out.gossip_rounds = plane->gossipRounds();
    out.suppressed_periods = out.metrics.suppressed_decision_periods;
  }
  return out;
}

std::vector<SweepPoint> runWorkloadSweep(const task::TaskSpec& spec,
                                         const core::PredictiveModels& models,
                                         const std::string& pattern,
                                         const SweepConfig& config) {
  RTDRM_ASSERT(!config.max_workload_units.empty());
  std::vector<SweepPoint> points(config.max_workload_units.size());

  parallelFor(
      points.size(),
      [&](std::size_t i) {
        const double units = config.max_workload_units[i];
        workload::RampParams ramp = config.ramp;
        ramp.max_workload = DataSize::tracks(units * 500.0);

        EpisodeConfig ep = config.episode;
        // EQF initial conditions track the pattern's starting workload.
        ep.manager.d_init = pattern == "decreasing" ? ramp.max_workload
                                                    : ramp.min_workload;

        const auto pat = workload::makeFig8Pattern(pattern, ramp);
        SweepPoint& pt = points[i];
        pt.max_workload_units = units;

        auto averaged = [&](AlgorithmKind kind) {
          if (config.replications <= 1) {
            return runEpisode(spec, *pat, models, kind, ep);
          }
          EpisodeResult mean;
          for (std::size_t r = 0; r < config.replications; ++r) {
            EpisodeConfig rep = ep;
            rep.scenario.seed = ep.scenario.seed + r;
            const EpisodeResult one = runEpisode(spec, *pat, models, kind,
                                                 rep);
            mean.missed_pct += one.missed_pct;
            mean.cpu_pct += one.cpu_pct;
            mean.net_pct += one.net_pct;
            mean.avg_replicas += one.avg_replicas;
            mean.combined += one.combined;
            if (r == 0) {
              mean.metrics = one.metrics;  // representative first replicate
            }
          }
          const auto n = static_cast<double>(config.replications);
          mean.missed_pct /= n;
          mean.cpu_pct /= n;
          mean.net_pct /= n;
          mean.avg_replicas /= n;
          mean.combined /= n;
          return mean;
        };
        pt.predictive = averaged(AlgorithmKind::kPredictive);
        pt.non_predictive = averaged(AlgorithmKind::kNonPredictive);
      },
      config.parallel ? 0 : 1);
  return points;
}

}  // namespace rtdrm::experiments
