#include "experiments/episode.hpp"

#include "common/assert.hpp"
#include "common/parallel.hpp"

namespace rtdrm::experiments {

std::string algorithmName(AlgorithmKind kind) {
  return kind == AlgorithmKind::kPredictive ? "predictive" : "non-predictive";
}

EpisodeResult runEpisode(const task::TaskSpec& spec,
                         const workload::Pattern& pattern,
                         const core::PredictiveModels& models,
                         AlgorithmKind algorithm,
                         const EpisodeConfig& config) {
  apps::Scenario scenario(config.scenario);

  // The pipeline reads the spec at job-submission time, so mutating this
  // local copy mid-run changes the ground truth for subsequent instances.
  task::TaskSpec live_spec = spec;
  if (config.drift_at_period > 0) {
    scenario.sim().scheduleAt(
        SimTime::zero() + spec.period *
                              static_cast<double>(config.drift_at_period),
        [&live_spec, scale = config.drift_cost_scale] {
          for (auto& st : live_spec.subtasks) {
            if (st.replicable) {
              st.cost.alpha_ms *= scale;
              st.cost.beta_ms *= scale;
            }
          }
        });
  }

  // Initial placement: chain spread round-robin over the nodes, one replica
  // per subtask (replication is the run-time system's job).
  std::vector<ProcessorId> homes;
  homes.reserve(spec.stageCount());
  for (std::size_t s = 0; s < spec.stageCount(); ++s) {
    homes.push_back(ProcessorId{
        static_cast<std::uint32_t>(s % config.scenario.node_count)});
  }

  std::unique_ptr<core::Allocator> allocator;
  if (algorithm == AlgorithmKind::kPredictive) {
    allocator = std::make_unique<core::PredictiveAllocator>(models);
  } else {
    allocator = std::make_unique<core::NonPredictiveAllocator>(
        config.nonpredictive_threshold);
  }

  core::ResourceManager manager(
      scenario.runtime(), live_spec, task::Placement(homes),
      [&pattern](std::uint64_t period) { return pattern.at(period); },
      std::move(allocator), models, config.manager,
      scenario.streams().get("exec-noise"));

  if (config.obs != nullptr) {
    manager.attachObs(*config.obs);
  }

  manager.start(scenario.sim().now());
  scenario.runFor(spec.period * static_cast<double>(config.periods));
  manager.stop();
  scenario.runFor(spec.period * config.drain_periods);

  if (config.obs != nullptr) {
    scenario.sim().exportMetrics(config.obs->metrics);
    scenario.ethernet().exportMetrics(config.obs->metrics);
    scenario.cluster().exportMetrics(config.obs->metrics);
    manager.exportMetrics(config.obs->metrics);
  }

  EpisodeResult out;
  out.metrics = manager.metrics();
  out.combined = out.metrics.combined(config.scenario.node_count);
  out.missed_pct = out.metrics.missedRatio() * 100.0;
  out.cpu_pct = out.metrics.cpu_utilization.mean() * 100.0;
  out.net_pct = out.metrics.net_utilization.mean() * 100.0;
  out.avg_replicas = out.metrics.replicas_per_subtask.mean();
  return out;
}

std::vector<SweepPoint> runWorkloadSweep(const task::TaskSpec& spec,
                                         const core::PredictiveModels& models,
                                         const std::string& pattern,
                                         const SweepConfig& config) {
  RTDRM_ASSERT(!config.max_workload_units.empty());
  std::vector<SweepPoint> points(config.max_workload_units.size());

  parallelFor(
      points.size(),
      [&](std::size_t i) {
        const double units = config.max_workload_units[i];
        workload::RampParams ramp = config.ramp;
        ramp.max_workload = DataSize::tracks(units * 500.0);

        EpisodeConfig ep = config.episode;
        // EQF initial conditions track the pattern's starting workload.
        ep.manager.d_init = pattern == "decreasing" ? ramp.max_workload
                                                    : ramp.min_workload;

        const auto pat = workload::makeFig8Pattern(pattern, ramp);
        SweepPoint& pt = points[i];
        pt.max_workload_units = units;

        auto averaged = [&](AlgorithmKind kind) {
          if (config.replications <= 1) {
            return runEpisode(spec, *pat, models, kind, ep);
          }
          EpisodeResult mean;
          for (std::size_t r = 0; r < config.replications; ++r) {
            EpisodeConfig rep = ep;
            rep.scenario.seed = ep.scenario.seed + r;
            const EpisodeResult one = runEpisode(spec, *pat, models, kind,
                                                 rep);
            mean.missed_pct += one.missed_pct;
            mean.cpu_pct += one.cpu_pct;
            mean.net_pct += one.net_pct;
            mean.avg_replicas += one.avg_replicas;
            mean.combined += one.combined;
            if (r == 0) {
              mean.metrics = one.metrics;  // representative first replicate
            }
          }
          const auto n = static_cast<double>(config.replications);
          mean.missed_pct /= n;
          mean.cpu_pct /= n;
          mean.net_pct /= n;
          mean.avg_replicas /= n;
          mean.combined /= n;
          return mean;
        };
        pt.predictive = averaged(AlgorithmKind::kPredictive);
        pt.non_predictive = averaged(AlgorithmKind::kNonPredictive);
      },
      config.parallel ? 0 : 1);
  return points;
}

}  // namespace rtdrm::experiments
