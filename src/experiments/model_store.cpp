#include "experiments/model_store.hpp"

#include "common/assert.hpp"
#include "common/parallel.hpp"

namespace rtdrm::experiments {

ModelFitConfig defaultModelFitConfig() {
  ModelFitConfig cfg;
  cfg.exec.data_sizes = profile::paperDataGrid();
  cfg.comm.workload_levels = profile::defaultCommGrid();
  return cfg;
}

FittedModelSet fitAllModels(const task::TaskSpec& spec,
                            const ModelFitConfig& config) {
  RTDRM_ASSERT(!config.exec.data_sizes.empty());
  FittedModelSet out;
  const std::size_t n = spec.stageCount();
  out.exec_fits.resize(n);

  parallelFor(
      n,
      [&](std::size_t i) {
        profile::ExecProfileConfig cfg = config.exec;
        cfg.seed = config.exec.seed + i;  // independent streams per subtask
        const auto samples = profile::profileExecution(spec.subtasks[i], cfg);
        out.exec_fits[i] = config.two_stage
                               ? regress::fitExecModelTwoStage(samples)
                               : regress::fitExecModelJoint(samples);
      },
      config.parallel ? 0 : 1);

  out.models.exec.reserve(n);
  for (const auto& fit : out.exec_fits) {
    out.models.exec.push_back(fit.model);
  }

  out.comm_fit = profile::profileAndFitBufferDelay(spec, config.comm);
  out.models.comm.buffer = out.comm_fit.model;
  out.models.comm.link_rate = config.link_rate;
  return out;
}

}  // namespace rtdrm::experiments
