// Whole-system evaluation episodes (paper §5.2).
//
// One episode = one workload pattern driven through the full stack —
// scenario (cluster + Ethernet + clocks), task pipeline, resource manager
// with one of the two allocators — for a fixed number of periods, yielding
// the metrics of Figs. 9-13. Sweeps run many episodes across max-workload
// levels; points are independent and execute in parallel.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "apps/scenario.hpp"
#include "core/manager.hpp"
#include "core/metrics.hpp"
#include "core/models.hpp"
#include "core/plane.hpp"
#include "fault/detector.hpp"
#include "obs/obs.hpp"
#include "task/spec.hpp"
#include "workload/generators.hpp"
#include "workload/patterns.hpp"

namespace rtdrm::experiments {

enum class AlgorithmKind { kPredictive, kNonPredictive };

std::string algorithmName(AlgorithmKind kind);

struct EpisodeConfig {
  apps::ScenarioConfig scenario{};
  std::uint64_t periods = 72;
  /// Extra drain time after the last release, in periods.
  double drain_periods = 3.0;
  core::ManagerConfig manager{};
  /// UT for the non-predictive allocator (Table 1: 20%).
  Utilization nonpredictive_threshold = Utilization::percent(20.0);
  /// Optional environmental drift: at period `drift_at_period` (> 0) the
  /// ground-truth cost of every replicable subtask is scaled by
  /// `drift_cost_scale` — new instances run at the new cost, while the
  /// offline models keep predicting the old one (pair with
  /// manager.online_refit to study a-posteriori refinement).
  std::uint64_t drift_at_period = 0;
  double drift_cost_scale = 1.0;
  /// Observability bundle (optional; single-episode runs only — sweeps run
  /// episodes in parallel and never set it). When non-null the manager's
  /// decision audit is recorded into its trace ring, and at episode end
  /// every substrate exports its counters into its registry.
  obs::Observability* obs = nullptr;
  /// Decentralized management plane. managers == 1 (the default) builds no
  /// plane at all — the episode is bit-for-bit identical to the legacy
  /// centralized path.
  core::PlaneConfig plane{};
  /// Manager-endpoint fault schedule (managers > 1 only): crash endpoint
  /// `manager_fault_target` at period `manager_crash_at_period` (0 = no
  /// crash), restarting it `manager_restart_after_periods` periods later
  /// (0 = never).
  std::uint64_t manager_crash_at_period = 0;
  std::uint32_t manager_fault_target = 0;
  double manager_restart_after_periods = 0.0;
  /// Heartbeat detector over the manager endpoints (managers > 1 only;
  /// drives elections).
  fault::DetectorConfig manager_detector{};
  /// Workload family. kPaper (the default) offers exactly the pattern the
  /// caller passed — byte-identical to every run before the generators
  /// existed. kPareto/kSurge replace it with the corresponding generator
  /// (seeded from the scenario seed); kMulti keeps the caller's pattern
  /// and adds co-hosted contender flows on the network substrate.
  workload::WorkloadMix workload_mix = workload::WorkloadMix::kPaper;
  workload::ParetoParams pareto{};
  workload::SurgeParams surge{};
  /// Sensor count for kSurge (the pipeline fuses all sensors' tracks).
  std::size_t surge_sensors = 4;
  workload::ContenderConfig contenders{};
};

struct EpisodeResult {
  core::EpisodeMetrics metrics;
  double combined = 0.0;       ///< the paper's C metric
  double missed_pct = 0.0;     ///< missed-deadline ratio, percent
  double cpu_pct = 0.0;        ///< mean CPU utilization, percent
  double net_pct = 0.0;        ///< mean network utilization, percent
  double avg_replicas = 0.0;   ///< mean replicas per replicable subtask
  // Decentralized-plane outcomes (all zero with managers == 1).
  double decision_gap_ms = 0.0;        ///< crash -> election gap total
  std::uint64_t elections = 0;
  std::uint64_t gossip_rounds = 0;
  std::uint64_t suppressed_periods = 0;  ///< period ticks gated out
};

/// Runs one episode. The same (spec, pattern, seed) with different
/// algorithms sees identical workloads and noise streams — paired
/// comparison, as in the paper's per-point experiments.
EpisodeResult runEpisode(const task::TaskSpec& spec,
                         const workload::Pattern& pattern,
                         const core::PredictiveModels& models,
                         AlgorithmKind algorithm, const EpisodeConfig& config);

/// One x-axis point of Figs. 9-13: both algorithms at one max workload.
struct SweepPoint {
  double max_workload_units = 0.0;  ///< in scale units of 500 tracks
  EpisodeResult predictive;
  EpisodeResult non_predictive;
};

struct SweepConfig {
  EpisodeConfig episode{};
  workload::RampParams ramp{};  ///< min workload & ramp length; max is swept
  /// Max-workload grid in scale units of 500 tracks (paper: 2..34).
  std::vector<double> max_workload_units{2,  4,  6,  8,  10, 12, 14, 16, 18,
                                         20, 22, 24, 26, 28, 30, 32, 34};
  /// Episodes per point per algorithm; > 1 averages across seeds
  /// (base seed + r), smoothing the curves the paper draws from single
  /// runs.
  std::size_t replications = 1;
  bool parallel = true;
};

/// Runs both algorithms at every max-workload level of the given Fig. 8
/// pattern ("increasing" | "decreasing" | "triangular").
std::vector<SweepPoint> runWorkloadSweep(const task::TaskSpec& spec,
                                         const core::PredictiveModels& models,
                                         const std::string& pattern,
                                         const SweepConfig& config);

}  // namespace rtdrm::experiments
