// Scenario: the fully wired simulated testbed (Table 1 baseline).
//
// Owns the simulator and every substrate — cluster, Ethernet segment,
// synchronized clocks, RNG streams — in construction order so teardown is
// safe. Examples, tests, the profiler, and the experiment runner all build
// on this instead of hand-wiring substrates.
#pragma once

#include <cstdint>
#include <memory>

#include "common/rng.hpp"
#include "net/clock_sync.hpp"
#include "net/ethernet.hpp"
#include "node/cluster.hpp"
#include "sim/simulator.hpp"
#include "task/runtime.hpp"

namespace rtdrm::apps {

struct ScenarioConfig {
  std::size_t node_count = 6;                       // Table 1
  node::ProcessorConfig cpu{};                      // RR, 1 ms slice
  /// Per-node relative speeds (extension); empty = homogeneous (paper).
  std::vector<double> node_speeds{};
  net::EthernetConfig ethernet{};                   // 100 Mbps
  net::ClockSyncConfig clock_sync{};
  node::BackgroundLoadConfig background{};
  /// Ambient CPU load on every node at scenario start (other system
  /// activity); profiling and ablations override per node.
  Utilization ambient_load = Utilization::fraction(0.05);
  std::uint64_t seed = 42;
  /// Start the clock synchronization service on construction.
  bool start_clock_sync = true;
};

class Scenario {
 public:
  explicit Scenario(const ScenarioConfig& config);
  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  const ScenarioConfig& config() const { return config_; }
  sim::Simulator& sim() { return sim_; }
  node::Cluster& cluster() { return cluster_; }
  net::Ethernet& ethernet() { return ethernet_; }
  net::ClockFabric& clocks() { return clocks_; }
  RngStreams& streams() { return streams_; }
  net::NetworkProbe& netProbe() { return net_probe_; }

  task::Runtime runtime() {
    return task::Runtime{sim_, cluster_, ethernet_, clocks_};
  }

 private:
  ScenarioConfig config_;
  RngStreams streams_;
  sim::Simulator sim_;
  node::Cluster cluster_;
  net::Ethernet ethernet_;
  net::ClockFabric clocks_;
  net::NetworkProbe net_probe_;
};

}  // namespace rtdrm::apps
