// Scenario: the fully wired simulated testbed (Table 1 baseline).
//
// Owns the simulator and every substrate — cluster, network (shared bus or
// switched fabric), synchronized clocks, RNG streams — in construction
// order so teardown is safe. Examples, tests, the profiler, and the
// experiment runner all build on this instead of hand-wiring substrates.
#pragma once

#include <cstdint>
#include <memory>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "net/clock_sync.hpp"
#include "net/ethernet.hpp"
#include "net/fabric.hpp"
#include "node/cluster.hpp"
#include "sim/sharded.hpp"
#include "sim/simulator.hpp"
#include "task/runtime.hpp"

namespace rtdrm::apps {

struct ScenarioConfig {
  std::size_t node_count = 6;                       // Table 1
  node::ProcessorConfig cpu{};                      // RR, 1 ms slice
  /// Per-node relative speeds (extension); empty = homogeneous (paper).
  std::vector<double> node_speeds{};
  net::EthernetConfig ethernet{};                   // 100 Mbps
  /// Which network substrate to build. kBus (the default, and the paper's
  /// Table 1 setup) is byte-identical to every run before the switched
  /// fabric existed; kSwitched builds a SwitchedFabric from `fabric`,
  /// whose per-link parameters are taken from `ethernet` so the two are
  /// comparable point for point.
  net::NetKind net_kind = net::NetKind::kBus;
  /// Fabric shape when net_kind == kSwitched (`fabric.link` is overwritten
  /// with `ethernet` at construction).
  net::SwitchedFabricConfig fabric{};
  net::ClockSyncConfig clock_sync{};
  node::BackgroundLoadConfig background{};
  /// Ambient CPU load on every node at scenario start (other system
  /// activity); profiling and ablations override per node.
  Utilization ambient_load = Utilization::fraction(0.05);
  std::uint64_t seed = 42;
  /// Start the clock synchronization service on construction.
  bool start_clock_sync = true;
  /// Event-kernel shards (1 = the legacy single queue, byte-identical to
  /// every run before sharding existed; K > 1 = shard 0 keeps the control
  /// plane and shards 1..K-1 split the nodes). The barrier lookahead is
  /// sized from `ethernet` (minCrossShardLatency()).
  std::size_t sim_shards = 1;
  /// Window mode for sharded execution (ignored when sim_shards == 1).
  parallel::SimMode sim_mode = parallel::SimMode::kDeterministic;
  /// Barrier-window sizing policy for sharded execution. Adaptive and
  /// static runs are digest-identical; adaptive executes far fewer
  /// barrier rounds (ignored when sim_shards == 1).
  parallel::LookaheadPolicy sim_lookahead = parallel::LookaheadPolicy::kAdaptive;
  /// Sync-point cadence for barrier hooks (busy-snapshot refresh) in
  /// sharded execution; bounds cross-shard snapshot staleness.
  SimDuration sim_sync_interval = SimDuration::millis(1.0);
};

class Scenario {
 public:
  explicit Scenario(const ScenarioConfig& config);
  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  const ScenarioConfig& config() const { return config_; }
  /// The control-plane simulator (the only one when sim_shards == 1).
  sim::Simulator& sim() { return engine_.control(); }
  /// The event engine. Always present; a 1-shard engine is the legacy
  /// single-queue path.
  sim::ShardedEngine& engine() { return engine_; }
  bool sharded() const { return engine_.shardCount() > 1; }
  node::Cluster& cluster() { return cluster_; }
  /// The network substrate, whichever kind the config selected.
  net::NetworkModel& net() { return *net_; }
  /// The shared bus — only valid when net_kind == kBus (asserted). Kept
  /// for the many tests and tools that program against bus specifics.
  net::Ethernet& ethernet();
  /// The switched fabric — only valid when net_kind == kSwitched.
  net::SwitchedFabric& fabric();
  net::ClockFabric& clocks() { return clocks_; }
  RngStreams& streams() { return streams_; }
  net::NetworkProbe& netProbe() { return net_probe_; }

  /// Advance the whole testbed — all shards, barrier-synchronized when
  /// sharded. Drivers must use this (or engine()) rather than
  /// sim().runFor(), which would advance only the control shard.
  void runFor(SimDuration d) { engine_.runFor(d); }
  void runUntil(SimTime t) { engine_.runUntil(t); }

  task::Runtime runtime() {
    return task::Runtime{engine_.control(), cluster_, *net_, clocks_,
                         sharded() ? &engine_ : nullptr};
  }

 private:
  static sim::ShardedConfig engineConfig(const ScenarioConfig& config) {
    sim::ShardedConfig ec;
    ec.shards = config.sim_shards == 0 ? 1 : config.sim_shards;
    ec.mode = config.sim_mode;
    ec.policy = config.sim_lookahead;
    // Conservative barrier lookahead from the selected substrate: the
    // fabric-wide minimum cross-node path when switched, the single-hop
    // bound on the bus (the fabric's strictly dominates the bus's).
    ec.lookahead = config.net_kind == net::NetKind::kSwitched
                       ? fabricConfig(config).minCrossShardLatency()
                       : config.ethernet.minCrossShardLatency();
    ec.sync_interval = config.sim_sync_interval;
    return ec;
  }
  static net::SwitchedFabricConfig fabricConfig(const ScenarioConfig& config) {
    net::SwitchedFabricConfig fc = config.fabric;
    fc.link = config.ethernet;
    return fc;
  }
  static std::unique_ptr<net::NetworkModel> makeNet(
      sim::Simulator& simulator, const ScenarioConfig& config);

  ScenarioConfig config_;
  RngStreams streams_;
  sim::ShardedEngine engine_;
  node::Cluster cluster_;
  std::unique_ptr<net::NetworkModel> net_;
  net::ClockFabric clocks_;
  net::NetworkProbe net_probe_;
};

}  // namespace rtdrm::apps
