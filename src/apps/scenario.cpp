#include "apps/scenario.hpp"

#include "common/assert.hpp"

namespace rtdrm::apps {

std::unique_ptr<net::NetworkModel> Scenario::makeNet(
    sim::Simulator& simulator, const ScenarioConfig& config) {
  if (config.net_kind == net::NetKind::kSwitched) {
    return std::make_unique<net::SwitchedFabric>(
        simulator, config.node_count, fabricConfig(config));
  }
  return std::make_unique<net::Ethernet>(simulator, config.node_count,
                                         config.ethernet);
}

net::Ethernet& Scenario::ethernet() {
  RTDRM_ASSERT_MSG(config_.net_kind == net::NetKind::kBus,
                   "ethernet() on a switched-fabric scenario; use net()");
  return static_cast<net::Ethernet&>(*net_);
}

net::SwitchedFabric& Scenario::fabric() {
  RTDRM_ASSERT_MSG(config_.net_kind == net::NetKind::kSwitched,
                   "fabric() on a shared-bus scenario; use net()");
  return static_cast<net::SwitchedFabric&>(*net_);
}

Scenario::Scenario(const ScenarioConfig& config)
    : config_(config),
      streams_(config.seed),
      engine_(engineConfig(config)),
      cluster_(engine_, config.node_count, config.cpu, config.node_speeds),
      net_(makeNet(engine_.control(), config)),
      clocks_(engine_.control(), config.node_count,
              streams_.get("clock-fabric"), config.clock_sync),
      net_probe_(engine_.control(), *net_) {
  // Belt and braces: every Processor constructor already validated its own
  // copy; this re-check keeps the contract even if the cluster seam ever
  // stops forwarding the config verbatim.
  config.cpu.validate();
  cluster_.attachBackgroundLoad(streams_, config.background);
  if (config.ambient_load.value() > 0.0) {
    for (ProcessorId id : cluster_.ids()) {
      cluster_.backgroundLoad(id).setTarget(config.ambient_load);
    }
  }
  if (config.start_clock_sync) {
    clocks_.startSync();
  }
}

}  // namespace rtdrm::apps
