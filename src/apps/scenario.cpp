#include "apps/scenario.hpp"

namespace rtdrm::apps {

Scenario::Scenario(const ScenarioConfig& config)
    : config_(config),
      streams_(config.seed),
      engine_(engineConfig(config)),
      cluster_(engine_, config.node_count, config.cpu, config.node_speeds),
      ethernet_(engine_.control(), config.node_count, config.ethernet),
      clocks_(engine_.control(), config.node_count,
              streams_.get("clock-fabric"), config.clock_sync),
      net_probe_(engine_.control(), ethernet_) {
  // Belt and braces: every Processor constructor already validated its own
  // copy; this re-check keeps the contract even if the cluster seam ever
  // stops forwarding the config verbatim.
  config.cpu.validate();
  cluster_.attachBackgroundLoad(streams_, config.background);
  if (config.ambient_load.value() > 0.0) {
    for (ProcessorId id : cluster_.ids()) {
      cluster_.backgroundLoad(id).setTarget(config.ambient_load);
    }
  }
  if (config.start_clock_sync) {
    clocks_.startSync();
  }
}

}  // namespace rtdrm::apps
