#include "apps/dynbench.hpp"

namespace rtdrm::apps {

task::TaskSpec makeAawTaskSpec(const AawTaskParams& params) {
  task::TaskSpec spec;
  spec.name = "AAW";
  spec.period = params.period;
  spec.deadline = params.deadline;
  // Elastic headroom (only read when the period-adjustment extension is
  // on): sensor tracks tolerate up to a 2x slower refresh before the
  // picture goes stale.
  spec.max_period = params.period * 2.0;

  // Non-replicable stages are lightweight, near-linear bookkeeping steps;
  // the heavy, data-quadratic work sits in the two replicable stages, which
  // is what makes replication the effective adaptation lever (paper item 6).
  spec.subtasks = {
      task::SubtaskSpec{"Detect", task::SubtaskCost{0.002, 0.25}, false,
                        params.noise_sigma},
      task::SubtaskSpec{"Correlate", task::SubtaskCost{0.003, 0.30}, false,
                        params.noise_sigma},
      task::SubtaskSpec{"Filter",
                        task::SubtaskCost{kFilterAlpha, kFilterBeta}, true,
                        params.noise_sigma},
      task::SubtaskSpec{"Assess", task::SubtaskCost{0.002, 0.25}, false,
                        params.noise_sigma},
      task::SubtaskSpec{"EvalDecide",
                        task::SubtaskCost{kEvalDecideAlpha, kEvalDecideBeta},
                        true, params.noise_sigma},
  };
  spec.messages.assign(4, task::MessageSpec{params.bytes_per_track});
  spec.validate();
  return spec;
}

task::TaskSpec makeEngagePathSpec(const AawTaskParams& params) {
  task::TaskSpec spec;
  spec.name = "Engage";
  spec.period = SimDuration::millis(500.0);
  spec.deadline = SimDuration::millis(450.0);
  spec.subtasks = {
      task::SubtaskSpec{"Designate", task::SubtaskCost{0.001, 0.15}, false,
                        params.noise_sigma},
      task::SubtaskSpec{"Correlate", task::SubtaskCost{0.03, 0.8}, true,
                        params.noise_sigma},
      task::SubtaskSpec{"ThreatEval", task::SubtaskCost{0.05, 1.2}, true,
                        params.noise_sigma},
      task::SubtaskSpec{"WeaponAssign", task::SubtaskCost{0.002, 0.3},
                        false, params.noise_sigma},
      task::SubtaskSpec{"Guide", task::SubtaskCost{0.02, 0.9}, true,
                        params.noise_sigma},
      task::SubtaskSpec{"Fire", task::SubtaskCost{0.0, 0.1}, false,
                        params.noise_sigma},
  };
  spec.messages.assign(5, task::MessageSpec{params.bytes_per_track});
  spec.validate();
  return spec;
}

task::TaskSpec makeSurveillancePathSpec(const AawTaskParams& params) {
  task::TaskSpec spec;
  spec.name = "Surveil";
  spec.period = SimDuration::seconds(2.0);
  spec.deadline = SimDuration::millis(1800.0);
  spec.subtasks = {
      task::SubtaskSpec{"Sweep", task::SubtaskCost{0.0, 0.4}, false,
                        params.noise_sigma},
      task::SubtaskSpec{"Compress", task::SubtaskCost{0.04, 1.5}, true,
                        params.noise_sigma},
      task::SubtaskSpec{"Log", task::SubtaskCost{0.0, 0.2}, false,
                        params.noise_sigma},
  };
  spec.messages.assign(2, task::MessageSpec{params.bytes_per_track});
  spec.validate();
  return spec;
}

}  // namespace rtdrm::apps
