// The synthetic AAW (Anti-Air Warfare) benchmark application.
//
// The paper profiles a real-time benchmark derived from the U.S. Navy AAW
// system [SWR99, WRSB98]: one periodic task of five serial subtasks, two of
// which (numbers 3 and 5 — "Filter" and "EvalDecide") are replicable
// (Table 1). We rebuild it synthetically: each subtask's *ground-truth*
// CPU demand is alpha*h^2 + beta*h ms (h = hundreds of tracks), with
// Filter's and EvalDecide's (alpha, beta) taken from the u->0 limit of the
// paper's measured regression coefficients (Table 2, a3/b3 columns), so a
// profiling pass over our simulator recovers coefficients directly
// comparable to the paper's.
#pragma once

#include "task/spec.hpp"

namespace rtdrm::apps {

/// Indices (0-based) of the replicable subtasks in the AAW task.
inline constexpr std::size_t kFilterStage = 2;      // paper's subtask 3
inline constexpr std::size_t kEvalDecideStage = 4;  // paper's subtask 5

/// Ground-truth cost coefficients of the two profiled subtasks, from the
/// u->0 limit of the paper's Table 2 (a3 = quadratic, b3 = linear term).
inline constexpr double kFilterAlpha = 0.11816174;
inline constexpr double kFilterBeta = 0.983699;
inline constexpr double kEvalDecideAlpha = 0.022324;
inline constexpr double kEvalDecideBeta = 1.443762;

struct AawTaskParams {
  SimDuration period = SimDuration::seconds(1.0);       // Table 1
  SimDuration deadline = SimDuration::millis(990.0);    // Table 1
  double bytes_per_track = 80.0;                        // Table 1
  /// Execution-time noise applied to every subtask run.
  double noise_sigma = 0.05;
};

/// Builds the 5-subtask AAW periodic task:
///   1 Detect -> 2 Correlate -> 3 Filter* -> 4 Assess -> 5 EvalDecide*
/// (* replicable).
task::TaskSpec makeAawTaskSpec(const AawTaskParams& params = {});

/// The DynBench benchmark [SWR99] the AAW task derives from has several
/// "paths"; two more are rebuilt here for heterogeneous task-set studies.

/// Engage path — a longer, faster chain active during engagements
/// (500 ms period, 6 stages, 3 replicable):
///   Designate -> Correlate* -> ThreatEval* -> WeaponAssign -> Guide* ->
///   Fire.
task::TaskSpec makeEngagePathSpec(const AawTaskParams& params = {});

/// Surveillance path — a short, light bookkeeping chain:
///   Sweep -> Compress* -> Log   (2 s period, generous deadline).
task::TaskSpec makeSurveillancePathSpec(const AawTaskParams& params = {});

}  // namespace rtdrm::apps
