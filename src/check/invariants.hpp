// System-wide invariant oracle.
//
// An observer wired into the ResourceManager (via core::ManagerObserver),
// the Simulator (post-event hook), the network (delivery receipts), the
// Cluster and the WorkloadLedger, asserting after every simulation event
// the properties the paper states as invariants:
//
//   * EQF sub-deadlines always sum to the end-to-end deadline (eqs. 1-2);
//   * replica sets are non-empty, duplicate-free, and every replica's host
//     exists; non-replicable stages never gain replicas;
//   * ledger totals equal the sum of the per-task posts (eq. 5's input);
//   * sampled processor utilization stays in [0, 1];
//   * no message is delivered before it is sent (receipt causality);
//   * the predictive allocator never *accepts* a replica set whose own
//     forecast violates the deadline-minus-slack bound (Fig. 5 step 6);
//   * CPU-time conservation: every processor's busyTime() equals
//     demandServed() + schedOverhead() (+ the in-flight stretch span while
//     busy) — no scheduling discipline can create or destroy CPU time;
//   * the live release period stays inside the task's elastic bounds
//     [period, max_period], every adjustment moves it in the direction its
//     dilated flag claims, and the elastic lever never dilates in a period
//     whose monitor verdict was pure slack (nor contracts without one).
//
// With a management plane watched (managers > 1), the decentralized-plane
// invariants join in:
//
//   * election uniqueness: at most one endpoint ever holds the active role,
//     and exactly one whenever decisions are allowed;
//   * no deposed decisions: the monitor/allocator hooks never fire while no
//     live active manager owns the decision channel;
//   * bounded staleness: no summary the active decides on is older than the
//     configured staleness bound (modulo the plane's up-edge grace).
//
// With a fault injector watched, three failure-mode invariants join in:
//
//   * no placement change ever *adds* a replica on a down node (the window
//     where a crash has not yet been detected may leave stale replicas, but
//     new ones must only land on live hosts);
//   * recovery completes within a grace budget: once a node has been down
//     for `recovery_grace_ms`, no watched placement still hosts it (waived
//     while zero nodes are up — there is nowhere to recover to);
//   * lost / duplicated frames never corrupt delivery accounting: the
//     delivery-observer count always equals the substrate's delivered
//     counter, and every receipt is observed at its delivery time.
//
// Violations are counted and recorded (bounded), or optionally abort the
// process — tests and the fuzzer collect, long soak runs may abort.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/manager.hpp"
#include "core/plane.hpp"
#include "fault/injector.hpp"
#include "net/network_model.hpp"
#include "node/cluster.hpp"
#include "sim/simulator.hpp"

namespace rtdrm::check {

struct InvariantViolation {
  std::string invariant;  ///< short id, e.g. "eqf-budget-sum"
  std::string detail;
  SimTime at;
};

struct OracleConfig {
  /// Absolute tolerance for floating-point equality checks, in ms.
  double tolerance_ms = 1e-6;
  /// Abort the process on the first violation (soak runs); default collects.
  bool abort_on_violation = false;
  /// Keep at most this many violation records (the count is unbounded).
  std::size_t max_recorded = 100;
  /// Sweep all watched state after every executed simulation event. Off,
  /// checks still run at every manager hook point.
  bool check_every_event = true;
  /// Recovery deadline: a node down for longer than this must no longer
  /// appear in any watched placement. Cover detector worst-case latency
  /// (timeout + retries * backoff + interval) plus the K periods the
  /// manager needs to re-place (ISSUE: "recovery completes within K
  /// periods"). Only enforced when a fault injector is watched.
  double recovery_grace_ms = 2000.0;
};

class InvariantOracle final : public core::ManagerObserver,
                              public fault::FaultObserver {
 public:
  explicit InvariantOracle(OracleConfig config = {});
  ~InvariantOracle() override;
  InvariantOracle(const InvariantOracle&) = delete;
  InvariantOracle& operator=(const InvariantOracle&) = delete;

  // ---- wiring (all watched objects must outlive the oracle) -------------
  /// Installs the post-event sweep hook (claims the simulator's single
  /// hook slot; released on destruction).
  void watch(sim::Simulator& sim);
  void watch(const node::Cluster& cluster);
  /// Claims the network's delivery-observer slot (released on destruction).
  void watch(net::NetworkModel& net);
  void watch(const core::WorkloadLedger& ledger);
  /// Attaches as the manager's observer. Multiple managers may be watched.
  void watch(core::ResourceManager& manager);
  /// Claims the injector's observer slot (released on destruction) so
  /// crash/restart times feed the recovery-deadline invariant.
  void watch(fault::FaultInjector& injector);
  /// Watches a decentralized management plane: election uniqueness,
  /// deposed-decision suppression and the gossip staleness bound.
  void watch(const core::ManagementPlane& plane);

  // ---- results ----------------------------------------------------------
  bool ok() const { return violation_count_ == 0; }
  std::uint64_t violationCount() const { return violation_count_; }
  const std::vector<InvariantViolation>& recorded() const { return recorded_; }
  std::uint64_t checksRun() const { return checks_run_; }
  /// Human-readable summary of every recorded violation.
  std::string report() const;

  // ---- independent observation counters ---------------------------------
  // Tallied from the oracle's own hook invocations, so they form a third
  // accounting source (besides EpisodeMetrics and the obs layer) for the
  // observability cross-check tests.
  /// Delivery receipts seen through the watched network.
  std::uint64_t receiptsObserved() const { return receipts_observed_; }
  /// Period records whose end-to-end latency missed the spec deadline.
  std::uint64_t missesObserved() const { return misses_observed_; }
  /// onAllocation calls whose status actually changed the replica set.
  std::uint64_t effectiveAllocationsObserved() const {
    return effective_allocations_observed_;
  }

  // ---- granular checks (public so tests can probe them directly) --------
  void checkBudgets(const core::EqfBudgets& budgets, double deadline_ms);
  void checkPlacement(const task::Placement& placement,
                      const task::TaskSpec& spec, std::size_t cluster_size);
  void checkReceipt(const net::MessageReceipt& receipt);
  void checkLedger(const core::WorkloadLedger& ledger);
  void checkClusterUtilization(const node::Cluster& cluster);
  /// Cross-checks the cluster's utilization min-index against the
  /// reference linear scans: leastUtilized must agree with a fresh scan
  /// (including under exclusion) and belowUtilization must reproduce the
  /// scan's ascending-id candidate set.
  void checkUtilizationIndex(const node::Cluster& cluster);
  /// Membership bitset vs ordered vector: contains(p) must hold exactly
  /// for the listed nodes.
  void checkReplicaSetIndex(const task::ReplicaSet& rs, std::size_t stage,
                            std::size_t cluster_size);
  void checkRecord(const task::PeriodRecord& record);
  void checkActions(const std::vector<core::Action>& actions,
                    const task::TaskSpec& spec);
  /// Re-derives the Fig.-5 acceptance condition for a successful predictive
  /// allocation: every replica's forecast fits budget - slack reserve.
  void checkAllocation(const core::Allocator& allocator,
                       const core::AllocationContext& ctx, std::size_t stage,
                       core::AllocStatus status, const task::ReplicaSet& rs);
  /// Policy-agnostic CPU-time conservation on every processor of the
  /// cluster: busyTime() == demandServed() + schedOverhead() exactly while
  /// idle, and exceeds it by at most the in-flight span while busy.
  /// Skipped for sharded clusters (processor state lives on other threads).
  void checkBusyConservation(const node::Cluster& cluster);
  /// The live release period must sit inside [spec.period,
  /// spec.effectiveMaxPeriod()].
  void checkPeriodBounds(const core::ResourceManager& manager);
  /// Delivered-counter vs observed-receipt reconciliation (needs a watched
  /// network; no-op otherwise).
  void checkDeliveryAccounting();
  /// Flags watched placements still hosting a node that has been down
  /// longer than the recovery grace (each crash reported at most once).
  void checkRecoveryDeadlines();
  /// Decentralized-plane sweep: active-role uniqueness and the gossip
  /// staleness bound (needs a watched plane; no-op otherwise).
  void checkPlane();
  /// Sweeps every watched cluster / ledger / manager now.
  void sweep();

  // ---- core::ManagerObserver --------------------------------------------
  void onBudgetsAssigned(const core::ResourceManager& manager,
                         const core::EqfBudgets& budgets) override;
  void onMonitorActions(const core::ResourceManager& manager,
                        const std::vector<core::Action>& actions) override;
  void onAllocation(const core::ResourceManager& manager, std::size_t stage,
                    core::AllocStatus status,
                    const core::AllocationContext& ctx,
                    const task::ReplicaSet& rs) override;
  void onPlacementChanged(const core::ResourceManager& manager,
                          const task::Placement& placement) override;
  void onPeriodRecord(const core::ResourceManager& manager,
                      const task::PeriodRecord& record) override;
  void onPeriodAdjust(const core::ResourceManager& manager,
                      SimDuration old_period, SimDuration new_period,
                      bool dilated) override;

  // ---- fault::FaultObserver ---------------------------------------------
  void onCrash(ProcessorId node, SimTime at) override;
  void onRestart(ProcessorId node, SimTime at) override;

 private:
  struct DownNode {
    ProcessorId node;
    SimTime since;
    bool reported = false;  ///< recovery-deadline violation already logged
  };

  void violate(const char* invariant, std::string detail);
  SimTime now() const;
  /// Deposed-decision guard shared by the decision-channel manager hooks.
  void checkDecisionOwnership(const char* hook);

  OracleConfig config_;
  sim::Simulator* sim_ = nullptr;
  std::vector<const node::Cluster*> clusters_;
  net::NetworkModel* net_ = nullptr;
  std::vector<const core::WorkloadLedger*> ledgers_;
  std::vector<core::ResourceManager*> managers_;
  fault::FaultInjector* injector_ = nullptr;
  const core::ManagementPlane* plane_ = nullptr;
  /// Last placement seen per watched manager (parallel to managers_);
  /// onPlacementChanged diffs against it to catch replicas *added* on a
  /// down node.
  std::vector<task::Placement> shadow_placements_;
  /// The monitor's verdict for the decision round in flight, per watched
  /// manager (parallel to managers_). Refreshed by onMonitorActions,
  /// cleared when the round's placement lands; onPeriodAdjust consults it
  /// to catch a dilation issued while the verdict was pure slack (or a
  /// contraction without one).
  struct MonitorVerdict {
    bool recorded = false;  ///< a non-empty action list was observed
    bool pressure = false;  ///< some stage was flagged for replication
    bool slack = false;     ///< some stage was flagged for shutdown
  };
  std::vector<MonitorVerdict> verdicts_;
  std::vector<DownNode> down_nodes_;
  std::uint64_t receipts_observed_ = 0;
  std::uint64_t misses_observed_ = 0;
  std::uint64_t effective_allocations_observed_ = 0;

  std::uint64_t checks_run_ = 0;
  std::uint64_t violation_count_ = 0;
  std::vector<InvariantViolation> recorded_;
};

}  // namespace rtdrm::check
