#include "check/invariants.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/assert.hpp"

namespace rtdrm::check {

InvariantOracle::InvariantOracle(OracleConfig config)
    : config_(config) {}

InvariantOracle::~InvariantOracle() {
  // Release the singleton hook slots we claimed so the watched objects can
  // outlive the oracle without dangling callbacks.
  if (sim_ != nullptr) {
    sim_->setPostEventHook(nullptr);
  }
  if (net_ != nullptr) {
    net_->setDeliveryObserver(nullptr);
  }
  if (injector_ != nullptr) {
    injector_->setObserver(nullptr);
  }
}

SimTime InvariantOracle::now() const {
  return sim_ != nullptr ? sim_->now() : SimTime::zero();
}

void InvariantOracle::violate(const char* invariant, std::string detail) {
  ++violation_count_;
  if (recorded_.size() < config_.max_recorded) {
    recorded_.push_back({invariant, detail, now()});
  }
  if (config_.abort_on_violation) {
    std::fprintf(stderr, "invariant violated [%s] at t=%.6f ms: %s\n",
                 invariant, now().ms(), detail.c_str());
    std::abort();
  }
}

void InvariantOracle::watch(sim::Simulator& sim) {
  RTDRM_ASSERT_MSG(sim_ == nullptr, "oracle already watches a simulator");
  sim_ = &sim;
  if (config_.check_every_event) {
    sim.setPostEventHook([this] { sweep(); });
  }
}

void InvariantOracle::watch(const node::Cluster& cluster) {
  clusters_.push_back(&cluster);
}

void InvariantOracle::watch(net::NetworkModel& net) {
  RTDRM_ASSERT_MSG(net_ == nullptr, "oracle already watches a network");
  net_ = &net;
  net.setDeliveryObserver([this](const net::MessageReceipt& r) {
    ++receipts_observed_;
    // The observer contract: it fires *at* the receipt's delivery time, so
    // a lost or duplicated frame can never surface a receipt early or late.
    if (sim_ != nullptr) {
      ++checks_run_;
      if (std::abs(r.delivered.ms() - sim_->now().ms()) >
          config_.tolerance_ms) {
        violate("receipt-delivery-time",
                "receipt delivered stamp " + std::to_string(r.delivered.ms()) +
                    " ms observed at " + std::to_string(sim_->now().ms()) +
                    " ms");
      }
    }
    checkReceipt(r);
  });
}

void InvariantOracle::watch(const core::WorkloadLedger& ledger) {
  ledgers_.push_back(&ledger);
}

void InvariantOracle::watch(core::ResourceManager& manager) {
  managers_.push_back(&manager);
  shadow_placements_.push_back(manager.runner().placement());
  verdicts_.emplace_back();
  manager.attachObserver(*this);
}

void InvariantOracle::watch(fault::FaultInjector& injector) {
  RTDRM_ASSERT_MSG(injector_ == nullptr,
                   "oracle already watches a fault injector");
  injector_ = &injector;
  injector.setObserver(this);
}

void InvariantOracle::watch(const core::ManagementPlane& plane) {
  RTDRM_ASSERT_MSG(plane_ == nullptr,
                   "oracle already watches a management plane");
  plane_ = &plane;
}

std::string InvariantOracle::report() const {
  std::ostringstream os;
  os << violation_count_ << " violation(s), " << checks_run_
     << " checks run\n";
  for (const InvariantViolation& v : recorded_) {
    os << "  [" << v.invariant << "] t=" << v.at.ms() << " ms: " << v.detail
       << "\n";
  }
  if (violation_count_ > recorded_.size()) {
    os << "  ... " << (violation_count_ - recorded_.size())
       << " more (recording capped)\n";
  }
  return os.str();
}

// ---- granular checks ------------------------------------------------------

void InvariantOracle::checkBudgets(const core::EqfBudgets& budgets,
                                   double deadline_ms) {
  ++checks_run_;
  const double tol = config_.tolerance_ms;

  double sum = 0.0;
  for (std::size_t i = 0; i < budgets.subtask_ms.size(); ++i) {
    if (budgets.subtask_ms[i] < -tol) {
      violate("eqf-budget-nonneg",
              "subtask " + std::to_string(i) + " budget " +
                  std::to_string(budgets.subtask_ms[i]) + " ms < 0");
    }
    sum += budgets.subtask_ms[i];
  }
  for (std::size_t i = 0; i < budgets.message_ms.size(); ++i) {
    if (budgets.message_ms[i] < -tol) {
      violate("eqf-budget-nonneg",
              "message " + std::to_string(i) + " budget " +
                  std::to_string(budgets.message_ms[i]) + " ms < 0");
    }
    sum += budgets.message_ms[i];
  }
  // §4.1 / eqs. 1-2: the sub-deadlines partition the end-to-end deadline.
  // Scale the tolerance with the deadline so ms-vs-seconds scenarios get
  // commensurate slack for rounding.
  const double sum_tol = tol * std::max(1.0, std::abs(deadline_ms));
  if (std::abs(sum - deadline_ms) > sum_tol) {
    violate("eqf-budget-sum",
            "budgets sum to " + std::to_string(sum) + " ms, deadline is " +
                std::to_string(deadline_ms) + " ms");
  }

  // Absolute sub-deadlines are the prefix sums: nondecreasing, ending at D.
  double prev = 0.0;
  for (std::size_t i = 0; i < budgets.subtask_abs_ms.size(); ++i) {
    if (budgets.subtask_abs_ms[i] < prev - tol) {
      violate("eqf-abs-monotone",
              "absolute deadline of subtask " + std::to_string(i) +
                  " precedes its predecessor's");
    }
    prev = budgets.subtask_abs_ms[i];
  }
  if (!budgets.subtask_abs_ms.empty() &&
      std::abs(budgets.subtask_abs_ms.back() - deadline_ms) > sum_tol) {
    violate("eqf-abs-final",
            "last absolute sub-deadline " +
                std::to_string(budgets.subtask_abs_ms.back()) +
                " ms != end-to-end deadline " + std::to_string(deadline_ms) +
                " ms");
  }
}

void InvariantOracle::checkPlacement(const task::Placement& placement,
                                     const task::TaskSpec& spec,
                                     std::size_t cluster_size) {
  ++checks_run_;
  if (placement.stageCount() != spec.stageCount()) {
    violate("placement-shape",
            "placement has " + std::to_string(placement.stageCount()) +
                " stages, spec has " + std::to_string(spec.stageCount()));
    return;
  }
  for (std::size_t s = 0; s < placement.stageCount(); ++s) {
    const task::ReplicaSet& rs = placement.stage(s);
    if (rs.size() == 0) {
      violate("replica-set-empty",
              "stage " + std::to_string(s) + " has no replicas");
      continue;
    }
    if (!spec.subtasks[s].replicable && rs.size() != 1) {
      violate("replica-nonreplicable",
              "non-replicable stage " + std::to_string(s) + " has " +
                  std::to_string(rs.size()) + " replicas");
    }
    for (std::size_t i = 0; i < rs.nodes().size(); ++i) {
      const ProcessorId p = rs.nodes()[i];
      if (cluster_size > 0 && p.value >= cluster_size) {
        violate("replica-host-exists",
                "stage " + std::to_string(s) + " replica on node " +
                    std::to_string(p.value) + ", cluster has " +
                    std::to_string(cluster_size) + " nodes");
      }
      for (std::size_t j = i + 1; j < rs.nodes().size(); ++j) {
        if (rs.nodes()[j] == p) {
          violate("replica-set-duplicate",
                  "stage " + std::to_string(s) + " hosts node " +
                      std::to_string(p.value) + " twice");
        }
      }
    }
    checkReplicaSetIndex(rs, s, cluster_size);
  }
}

void InvariantOracle::checkReplicaSetIndex(const task::ReplicaSet& rs,
                                           std::size_t stage,
                                           std::size_t cluster_size) {
  ++checks_run_;
  // The membership bitset and the ordered node vector must describe the
  // same set: contains() true for every listed node, false for every other
  // id the cluster could offer.
  std::size_t probe_range = cluster_size;
  for (const ProcessorId p : rs.nodes()) {
    probe_range = std::max<std::size_t>(probe_range, p.value + 2);
  }
  std::vector<bool> listed(probe_range, false);
  for (const ProcessorId p : rs.nodes()) {
    if (p.value < probe_range) {
      listed[p.value] = true;
    }
  }
  for (std::uint32_t i = 0; i < probe_range; ++i) {
    if (rs.contains(ProcessorId{i}) != listed[i]) {
      violate("replica-set-index",
              "stage " + std::to_string(stage) + ": contains(" +
                  std::to_string(i) + ") = " +
                  (listed[i] ? "false" : "true") +
                  " disagrees with the ordered node vector");
    }
  }
}

void InvariantOracle::checkReceipt(const net::MessageReceipt& receipt) {
  ++checks_run_;
  const double tol = config_.tolerance_ms;
  // Causality: a message cannot hit the wire before it was enqueued, nor be
  // delivered before its first bit was sent.
  if (receipt.bufferDelay().ms() < -tol) {
    violate("receipt-buffer-causality",
            "first bit at " + std::to_string(receipt.first_bit.ms()) +
                " ms precedes enqueue at " +
                std::to_string(receipt.enqueued.ms()) + " ms");
  }
  if (receipt.transferDelay().ms() < -tol) {
    violate("receipt-transfer-causality",
            "delivery at " + std::to_string(receipt.delivered.ms()) +
                " ms precedes first bit at " +
                std::to_string(receipt.first_bit.ms()) + " ms");
  }
  if (sim_ != nullptr && receipt.enqueued.ms() > sim_->now().ms() + tol) {
    violate("receipt-from-future",
            "receipt enqueued at " + std::to_string(receipt.enqueued.ms()) +
                " ms, now is " + std::to_string(sim_->now().ms()) + " ms");
  }
  if (receipt.payload < Bytes::zero()) {
    violate("receipt-payload-nonneg", "negative payload");
  }
}

void InvariantOracle::checkLedger(const core::WorkloadLedger& ledger) {
  ++checks_run_;
  double sum = 0.0;
  for (std::size_t t = 0; t < ledger.taskCount(); ++t) {
    const double posted =
        ledger.posted(core::WorkloadLedger::TaskId{t}).count();
    if (posted < 0.0) {
      violate("ledger-post-nonneg",
              "task " + ledger.taskName(core::WorkloadLedger::TaskId{t}) +
                  " posted " + std::to_string(posted) + " tracks");
    }
    sum += posted;
  }
  const double total = ledger.total().count();
  if (std::abs(total - sum) > config_.tolerance_ms * std::max(1.0, sum)) {
    violate("ledger-total",
            "ledger total " + std::to_string(total) +
                " != sum of posts " + std::to_string(sum));
  }
}

void InvariantOracle::checkClusterUtilization(const node::Cluster& cluster) {
  ++checks_run_;
  for (std::uint32_t i = 0; i < cluster.size(); ++i) {
    const double u = cluster.lastUtilization(ProcessorId{i}).value();
    if (u < 0.0 || u > 1.0 || !std::isfinite(u)) {
      violate("utilization-range",
              "node " + std::to_string(i) + " utilization " +
                  std::to_string(u) + " outside [0, 1]");
    }
  }
}

void InvariantOracle::checkUtilizationIndex(const node::Cluster& cluster) {
  ++checks_run_;
  // Reference pmin scan (the seed's rule: strictly-lower utilization wins,
  // ties to the lower id), with an optional one-node exclusion. Down nodes
  // are masked from the index, so the reference skips them too.
  const auto scan_min =
      [&cluster](std::uint32_t skip) -> std::optional<ProcessorId> {
    std::optional<ProcessorId> best;
    double best_u = 0.0;
    for (std::uint32_t i = 0; i < cluster.size(); ++i) {
      if (i == skip || !cluster.isUp(ProcessorId{i})) {
        continue;
      }
      const double u = cluster.lastUtilization(ProcessorId{i}).value();
      if (!best || u < best_u) {
        best = ProcessorId{i};
        best_u = u;
      }
    }
    return best;
  };

  const auto indexed = cluster.leastUtilized({});
  const auto reference = scan_min(0xffffffffu);
  if (indexed != reference) {
    violate("utilization-index-pmin",
            "leastUtilized({}) = " +
                (indexed ? std::to_string(indexed->value) : "none") +
                ", reference scan says " +
                (reference ? std::to_string(reference->value) : "none"));
  }
  // Excluding the minimum forces the index down its tie-break/exclusion
  // path; the result must be the scan's runner-up.
  if (indexed.has_value() && cluster.upCount() > 1) {
    const auto second = cluster.leastUtilized({*indexed});
    const auto second_ref = scan_min(indexed->value);
    if (second != second_ref) {
      violate("utilization-index-exclusion",
              "leastUtilized(exclude pmin) = " +
                  (second ? std::to_string(second->value) : "none") +
                  ", reference scan says " +
                  (second_ref ? std::to_string(second_ref->value) : "none"));
    }
  }

  // The Fig.-5 growth order: a cursor with no initial exclusions must
  // enumerate every *up* node exactly once, in the same sequence that
  // repeated leastUtilized() calls with a growing exclusion set produce.
  {
    auto cursor = cluster.utilizationCursor({});
    std::vector<ProcessorId> grown;
    bool order_ok = true;
    while (const auto got = cursor.next()) {
      const auto ref = cluster.leastUtilized(grown);
      if (!ref || *ref != *got) {
        violate("utilization-index-cursor",
                "cursor yield " + std::to_string(grown.size()) + " = " +
                    std::to_string(got->value) + ", repeated leastUtilized " +
                    "says " + (ref ? std::to_string(ref->value) : "none"));
        order_ok = false;
        break;
      }
      grown.push_back(*got);
    }
    if (order_ok && grown.size() != cluster.upCount()) {
      violate("utilization-index-cursor",
              "cursor enumerated " + std::to_string(grown.size()) + " of " +
                  std::to_string(cluster.upCount()) + " up nodes");
    }
  }

  // The Fig.-7 candidate set at the paper's UT = 20%: the pruned-DFS path
  // must reproduce the scan's ascending-id set.
  const Utilization ut = Utilization::percent(20.0);
  std::vector<ProcessorId> ref_below;
  for (std::uint32_t i = 0; i < cluster.size(); ++i) {
    if (cluster.isUp(ProcessorId{i}) &&
        cluster.lastUtilization(ProcessorId{i}).value() < ut.value()) {
      ref_below.push_back(ProcessorId{i});
    }
  }
  if (cluster.belowUtilization(ut) != ref_below) {
    violate("utilization-index-below",
            "belowUtilization(20%) disagrees with the reference scan (" +
                std::to_string(ref_below.size()) + " reference candidates)");
  }
}

void InvariantOracle::checkRecord(const task::PeriodRecord& record) {
  ++checks_run_;
  // True-time causality only: measured_latency is stamped with per-node
  // clocks whose skew can legitimately make it negative.
  if (record.finish.ms() < record.release.ms() - config_.tolerance_ms) {
    violate("record-causality",
            "period " + std::to_string(record.period_index) +
                " finished at " + std::to_string(record.finish.ms()) +
                " ms, released at " + std::to_string(record.release.ms()) +
                " ms");
  }
  for (std::size_t s = 0; s < record.stages.size(); ++s) {
    const task::StageRecord& st = record.stages[s];
    if (!st.completed) {
      continue;
    }
    if (st.end.ms() < st.start.ms() - config_.tolerance_ms) {
      violate("stage-causality",
              "stage " + std::to_string(s) + " ends before it starts");
    }
    if (st.replicas == 0) {
      violate("stage-replicas",
              "completed stage " + std::to_string(s) + " ran 0 replicas");
    }
    if (st.worst_exec.ms() < -config_.tolerance_ms ||
        st.worst_msg.ms() < -config_.tolerance_ms) {
      violate("stage-latency-nonneg",
              "stage " + std::to_string(s) + " has negative worst-case");
    }
  }
}

void InvariantOracle::checkActions(const std::vector<core::Action>& actions,
                                   const task::TaskSpec& spec) {
  ++checks_run_;
  for (const core::Action& a : actions) {
    if (a.stage >= spec.stageCount()) {
      violate("action-stage-range",
              "action targets stage " + std::to_string(a.stage) +
                  " of a " + std::to_string(spec.stageCount()) +
                  "-stage task");
      continue;
    }
    // §4.1: only replicable subtasks become replication or shutdown
    // candidates.
    if (!spec.subtasks[a.stage].replicable) {
      violate("action-replicable-only",
              "action targets non-replicable stage " +
                  std::to_string(a.stage));
    }
  }
}

void InvariantOracle::checkAllocation(const core::Allocator& allocator,
                                      const core::AllocationContext& ctx,
                                      std::size_t stage,
                                      core::AllocStatus status,
                                      const task::ReplicaSet& rs) {
  ++checks_run_;
  if (status != core::AllocStatus::kSuccess) {
    return;
  }
  const auto* predictive =
      dynamic_cast<const core::PredictiveAllocator*>(&allocator);
  if (predictive == nullptr) {
    return;  // Fig. 7 accepts on a utilization heuristic, not a forecast.
  }
  // Fig. 5 step 6/7: success means *every* replica's forecast latency fits
  // the stage budget minus the slack reserve. Re-derive the acceptance
  // condition from the allocator's own forecast function.
  const double budget = ctx.budgets.stageBudgetMs(stage);
  const double limit = budget - ctx.slack_fraction * budget;
  for (const ProcessorId q : rs.nodes()) {
    const Utilization u = ctx.cluster.lastUtilization(q);
    const double forecast =
        predictive->forecastReplicaLatencyOn(ctx, stage, rs.size(), q, u)
            .ms();
    if (forecast > limit + config_.tolerance_ms * std::max(1.0, budget)) {
      violate("predictive-acceptance",
              "accepted replica set for stage " + std::to_string(stage) +
                  " but node " + std::to_string(q.value) + " forecasts " +
                  std::to_string(forecast) + " ms > limit " +
                  std::to_string(limit) + " ms (budget " +
                  std::to_string(budget) + " ms, slack " +
                  std::to_string(ctx.slack_fraction) + ")");
    }
  }
}

void InvariantOracle::checkBusyConservation(const node::Cluster& cluster) {
  // Sharded clusters run their processors on other threads; the sweep may
  // fire mid-shard-window, so direct accumulator reads would race. The
  // single-threaded engine (and every unit test) covers the law.
  if (cluster.sharded()) {
    return;
  }
  ++checks_run_;
  const double tol = config_.tolerance_ms;
  for (const ProcessorId id : cluster.ids()) {
    const node::Processor& p = cluster.processor(id);
    const double busy = p.busyTime().ms();
    const double attributed = p.demandServed().ms() + p.schedOverhead().ms();
    // busyTime() may exceed the attributed accumulators by exactly the
    // in-flight stretch span (non-negative); while idle they must agree.
    const double in_flight = busy - attributed;
    if (in_flight < -tol) {
      violate("busy-conservation",
              "node " + std::to_string(id.value) + " busy " +
                  std::to_string(busy) + " ms < served+overhead " +
                  std::to_string(attributed) + " ms");
    } else if (!p.busy() && in_flight > tol) {
      violate("busy-conservation-idle",
              "idle node " + std::to_string(id.value) + " busy " +
                  std::to_string(busy) + " ms != served+overhead " +
                  std::to_string(attributed) + " ms");
    }
  }
}

void InvariantOracle::checkPeriodBounds(const core::ResourceManager& manager) {
  ++checks_run_;
  const double tol = config_.tolerance_ms;
  const double cur = manager.currentPeriod().ms();
  const double lo = manager.spec().period.ms();
  const double hi = manager.spec().effectiveMaxPeriod().ms();
  if (cur < lo - tol || cur > hi + tol) {
    violate("period-bounds",
            "live period " + std::to_string(cur) +
                " ms outside the elastic bounds [" + std::to_string(lo) +
                ", " + std::to_string(hi) + "] ms");
  }
}

void InvariantOracle::checkDeliveryAccounting() {
  if (net_ == nullptr) {
    return;
  }
  ++checks_run_;
  // The substrate counts a delivery and fires the observer in the same
  // event, so post-event the two tallies always agree — even while frames
  // are being lost (retransmitted) or duplicated (extra wire time only).
  if (net_->messagesDelivered() != receipts_observed_) {
    violate("delivery-accounting",
            "substrate delivered " +
                std::to_string(net_->messagesDelivered()) +
                " message(s), observer saw " +
                std::to_string(receipts_observed_));
  }
}

void InvariantOracle::checkRecoveryDeadlines() {
  if (down_nodes_.empty() || managers_.empty()) {
    return;
  }
  ++checks_run_;
  // Waive while nothing is up: with zero survivors there is no node to
  // re-place replicas onto, so the deadline cannot be met by design.
  if (!clusters_.empty() && clusters_.front()->upCount() == 0) {
    return;
  }
  // Waive while the management plane is headless: node failures queue
  // until the next election (nobody may decide during the gap), so the
  // recovery clock only starts once the decision channel reopens.
  if (plane_ != nullptr && plane_->enabled() && !plane_->decisionsAllowed()) {
    for (DownNode& d : down_nodes_) {
      if (!d.reported) {
        d.since = now();
      }
    }
    return;
  }
  const double grace = config_.recovery_grace_ms;
  for (DownNode& d : down_nodes_) {
    if (d.reported || now().ms() - d.since.ms() <= grace) {
      continue;
    }
    for (core::ResourceManager* m : managers_) {
      const task::Placement& placement = m->runner().placement();
      for (std::size_t s = 0; s < placement.stageCount(); ++s) {
        if (placement.stage(s).contains(d.node)) {
          d.reported = true;
          violate("fault-recovery-deadline",
                  "node " + std::to_string(d.node.value) + " down since " +
                      std::to_string(d.since.ms()) + " ms still hosts stage " +
                      std::to_string(s) + " after " + std::to_string(grace) +
                      " ms grace");
        }
      }
    }
  }
}

void InvariantOracle::checkPlane() {
  if (plane_ == nullptr || !plane_->enabled()) {
    return;
  }
  ++checks_run_;
  // Election uniqueness: at most one endpoint ever believes it is active,
  // and exactly one whenever the decision channel is open.
  const std::size_t active = plane_->activeCount();
  if (active > 1) {
    violate("plane-election-uniqueness",
            std::to_string(active) + " endpoints hold the active role");
  }
  if (plane_->decisionsAllowed() && active != 1) {
    violate("plane-election-uniqueness",
            "decisions allowed with " + std::to_string(active) +
                " active endpoint(s)");
  }
  // Bounded staleness: no summary the active decides on may outlive the
  // configured bound (the plane excuses down origins and grants a
  // one-bound grace after up-edges and elections).
  const double bound_ms = plane_->config().staleness_bound.ms();
  const double worst_ms = plane_->worstViewAgeMs();
  if (worst_ms > bound_ms + config_.tolerance_ms) {
    violate("plane-gossip-staleness",
            "active manager " + std::to_string(plane_->activeManager()) +
                " decides on a summary " + std::to_string(worst_ms) +
                " ms old, bound is " + std::to_string(bound_ms) + " ms");
  }
}

void InvariantOracle::checkDecisionOwnership(const char* hook) {
  if (plane_ == nullptr || !plane_->enabled()) {
    return;
  }
  ++checks_run_;
  // The decision gate must have suppressed this hook: a deposed manager
  // (or a headless plane) may never reshape placements or budgets.
  if (!plane_->decisionsAllowed()) {
    violate("plane-deposed-decision",
            std::string(hook) +
                " fired while no live active manager owns decisions");
  }
}

void InvariantOracle::sweep() {
  for (const node::Cluster* c : clusters_) {
    checkClusterUtilization(*c);
    checkUtilizationIndex(*c);
    checkBusyConservation(*c);
  }
  for (const core::WorkloadLedger* l : ledgers_) {
    checkLedger(*l);
  }
  checkDeliveryAccounting();
  checkRecoveryDeadlines();
  checkPlane();
  for (core::ResourceManager* m : managers_) {
    checkBudgets(m->budgets(), m->spec().deadline.ms());
    checkPeriodBounds(*m);
    std::size_t cluster_size = 0;
    if (!clusters_.empty()) {
      cluster_size = clusters_.front()->size();
    }
    checkPlacement(m->runner().placement(), m->spec(), cluster_size);
  }
}

// ---- core::ManagerObserver hooks ------------------------------------------

void InvariantOracle::onBudgetsAssigned(const core::ResourceManager& manager,
                                        const core::EqfBudgets& budgets) {
  checkBudgets(budgets, manager.spec().deadline.ms());
}

void InvariantOracle::onMonitorActions(const core::ResourceManager& manager,
                                       const std::vector<core::Action>& actions) {
  checkDecisionOwnership("monitor-actions");
  checkActions(actions, manager.spec());
  for (std::size_t m = 0; m < managers_.size(); ++m) {
    if (managers_[m] != &manager) {
      continue;
    }
    MonitorVerdict& v = verdicts_[m];
    v.recorded = !actions.empty();
    v.pressure = false;
    v.slack = false;
    for (const core::Action& a : actions) {
      (a.kind == core::ActionKind::kReplicate ? v.pressure : v.slack) = true;
    }
    break;
  }
}

void InvariantOracle::onAllocation(const core::ResourceManager& manager,
                                   std::size_t stage, core::AllocStatus status,
                                   const core::AllocationContext& ctx,
                                   const task::ReplicaSet& rs) {
  if (status != core::AllocStatus::kNoChange) {
    ++effective_allocations_observed_;
  }
  checkDecisionOwnership("allocation");
  checkAllocation(manager.allocator(), ctx, stage, status, rs);
}

void InvariantOracle::onPlacementChanged(const core::ResourceManager& manager,
                                         const task::Placement& placement) {
  checkDecisionOwnership("placement-change");
  std::size_t cluster_size = 0;
  if (!clusters_.empty()) {
    cluster_size = clusters_.front()->size();
  }
  checkPlacement(placement, manager.spec(), cluster_size);

  // Diff against the last placement this manager showed us: a node that
  // joined a stage must be up *now*. Stale replicas on a node that died
  // after placement are legal (detection lags the crash); adding new ones
  // there is not — every allocator path reads the masked index.
  for (std::size_t m = 0; m < managers_.size(); ++m) {
    if (managers_[m] != &manager) {
      continue;
    }
    ++checks_run_;
    const task::Placement& previous = shadow_placements_[m];
    const node::Cluster* cluster =
        clusters_.empty() ? nullptr : clusters_.front();
    for (std::size_t s = 0; s < placement.stageCount(); ++s) {
      for (const ProcessorId p : placement.stage(s).nodes()) {
        const bool added = s >= previous.stageCount() ||
                           !previous.stage(s).contains(p);
        if (added && cluster != nullptr && p.value < cluster->size() &&
            !cluster->isUp(p)) {
          violate("replica-on-down-node",
                  "placement change added stage " + std::to_string(s) +
                      " replica on down node " + std::to_string(p.value));
        }
      }
    }
    shadow_placements_[m] = placement;
    // The decision round is over once its placement lands; the verdict
    // must not leak into failure-triggered adjustments between rounds.
    verdicts_[m] = MonitorVerdict{};
    break;
  }
}

void InvariantOracle::onPeriodAdjust(const core::ResourceManager& manager,
                                     SimDuration old_period,
                                     SimDuration new_period, bool dilated) {
  checkDecisionOwnership("period-adjust");
  ++checks_run_;
  // Every adjustment must actually move, in the direction it claims.
  if (dilated ? new_period.ms() <= old_period.ms()
              : new_period.ms() >= old_period.ms()) {
    violate("period-step-direction",
            std::string(dilated ? "dilation" : "contraction") + " moved " +
                std::to_string(old_period.ms()) + " -> " +
                std::to_string(new_period.ms()) + " ms");
  }
  checkPeriodBounds(manager);
  for (std::size_t m = 0; m < managers_.size(); ++m) {
    if (managers_[m] != &manager) {
      continue;
    }
    const MonitorVerdict& v = verdicts_[m];
    // The elastic lever trades rate for capacity: dilating while the
    // monitor's verdict this round was pure slack would slow a task that
    // has headroom to spare. (Failure-triggered dilations arrive between
    // rounds, with no recorded verdict, and are exempt.)
    if (dilated && v.recorded && !v.pressure) {
      violate("period-dilation-under-slack",
              "period dilated to " + std::to_string(new_period.ms()) +
                  " ms while the monitor saw only high-slack candidates");
    }
    // Contractions exist only as the high-slack unwind step.
    if (!dilated && !v.slack) {
      violate("period-contraction-without-slack",
              "period contracted to " + std::to_string(new_period.ms()) +
                  " ms without a high-slack candidate this round");
    }
    break;
  }
}

void InvariantOracle::onPeriodRecord(const core::ResourceManager& manager,
                                     const task::PeriodRecord& record) {
  if (record.missed(manager.spec().deadline)) {
    ++misses_observed_;
  }
  checkRecord(record);
}

// ---- fault::FaultObserver hooks -------------------------------------------

void InvariantOracle::onCrash(ProcessorId node, SimTime at) {
  for (const DownNode& d : down_nodes_) {
    if (d.node == node) {
      violate("fault-double-crash",
              "node " + std::to_string(node.value) +
                  " crashed while already down");
      return;
    }
  }
  down_nodes_.push_back({node, at, false});
}

void InvariantOracle::onRestart(ProcessorId node, SimTime at) {
  (void)at;
  for (std::size_t i = 0; i < down_nodes_.size(); ++i) {
    if (down_nodes_[i].node == node) {
      down_nodes_.erase(down_nodes_.begin() +
                        static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
  violate("fault-restart-unknown",
          "node " + std::to_string(node.value) +
              " restarted without a recorded crash");
}

}  // namespace rtdrm::check
