#include "check/fuzz.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <sstream>
#include <utility>

#include "apps/scenario.hpp"
#include "common/assert.hpp"
#include "core/ledger.hpp"
#include "core/manager.hpp"
#include "core/plane.hpp"
#include "fault/injector.hpp"
#include "obs/obs.hpp"
#include "sim/trace.hpp"

namespace rtdrm::check {

namespace {

/// Hex-float append: byte-exact round-trip of every double in the digest
/// (decimal formatting could collapse adjacent values).
void appendHex(std::string& out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a,", v);
  out += buf;
}

void appendCount(std::string& out, std::uint64_t v) {
  out += std::to_string(v);
  out += ',';
}

/// One reconciliation line: appended only when the sources disagree.
void reconcile(std::string& out, const char* what, std::uint64_t obs_value,
               std::uint64_t metrics_value, std::uint64_t oracle_value) {
  if (obs_value == metrics_value && metrics_value == oracle_value) {
    return;
  }
  out += what;
  out += ": obs=" + std::to_string(obs_value) +
         " metrics=" + std::to_string(metrics_value) +
         " oracle=" + std::to_string(oracle_value) + "\n";
}

}  // namespace

std::string ShrinkSpec::cliFlags() const {
  std::string out;
  if (max_subtasks > 0) {
    out += " --max-subtasks=" + std::to_string(max_subtasks);
  }
  if (max_periods > 0) {
    out += " --max-periods=" + std::to_string(max_periods);
  }
  if (flatten_workload) {
    out += " --flat";
  }
  if (drop_faults) {
    out += " --drop-faults";
  }
  if (drop_manager_faults) {
    out += " --drop-manager-faults";
  }
  if (drop_sched) {
    out += " --drop-sched";
  }
  if (drop_period_adjust) {
    out += " --drop-period-adjust";
  }
  if (drop_net_topology) {
    out += " --drop-net-topology";
  }
  if (drop_workload_mix) {
    out += " --drop-workload-mix";
  }
  return out;
}

const char* allocatorKindName(AllocatorKind kind) {
  return kind == AllocatorKind::kPredictive ? "predictive" : "non-predictive";
}

std::string FuzzScenario::summary() const {
  std::ostringstream os;
  double lo = workload_tracks.empty() ? 0.0 : workload_tracks.front();
  double hi = lo;
  for (std::uint64_t p = 0; p < periods && p < workload_tracks.size(); ++p) {
    lo = std::min(lo, workload_tracks[p]);
    hi = std::max(hi, workload_tracks[p]);
  }
  os << "seed=" << seed << " nodes=" << node_count << " stages="
     << spec.stageCount() << " periods=" << periods << " period="
     << spec.period.ms() << "ms deadline=" << spec.deadline.ms()
     << "ms workload=[" << lo << ".." << hi << "] tracks"
     << (coresident_tracks.empty() ? "" : " +coresident")
     << (manager.action_latency > SimDuration::zero() ? " +action-latency"
                                                      : "")
     << (manager.allow_load_shedding ? " +shedding" : "");
  if (!faults.empty()) {
    os << " +faults(crash=" << faults.crashes.size()
       << " throttle=" << faults.throttles.size()
       << " link=" << faults.links.size()
       << " clock=" << faults.clock_outages.size() << ")";
  }
  if (managers > 1) {
    os << " +managers(" << managers
       << " crash=" << faults.manager_crashes.size() << ")";
  }
  if (sched != node::SchedPolicy::kRoundRobin) {
    os << " sched=" << node::schedPolicyName(sched);
  }
  if (manager.allow_period_adjust) {
    os << " +period-adjust(max=" << spec.effectiveMaxPeriod().ms()
       << "ms step=" << manager.period_adjust_step << ")";
  }
  if (net_kind == net::NetKind::kSwitched) {
    os << " net=switched(" << fabric.segments << "x"
       << net::fabricTopologyName(fabric.topology)
       << " buf=" << fabric.port_buffer_frames << ")";
  }
  if (workload_mix != workload::WorkloadMix::kPaper) {
    os << " workload=" << workload::workloadMixName(workload_mix);
    if (workload_mix == workload::WorkloadMix::kMulti) {
      os << "(" << contenders.flows << " flows)";
    }
  }
  return os.str();
}

FuzzScenario makeFuzzScenario(std::uint64_t seed, const ShrinkSpec& shrink,
                              bool with_faults, bool with_manager_faults,
                              bool with_sched, bool with_period_adjust,
                              bool with_net_topology, bool with_workload_mix) {
  // Every draw below happens unconditionally and in a fixed order, so the
  // same seed yields the same scenario no matter which caps apply.
  RngStreams streams(seed);
  Xoshiro256 g = streams.get("fuzz-gen");

  FuzzScenario s;
  s.seed = seed;
  s.node_count = static_cast<std::size_t>(g.uniformInt(2, 8));

  const auto n_full = static_cast<std::size_t>(g.uniformInt(2, 6));
  s.spec.name = "F" + std::to_string(seed);
  s.spec.subtasks.resize(n_full);
  for (std::size_t i = 0; i < n_full; ++i) {
    task::SubtaskSpec& st = s.spec.subtasks[i];
    st.name = "st" + std::to_string(i + 1);
    st.cost.beta_ms = g.uniform(0.3, 1.5);
    st.cost.alpha_ms = g.uniform(0.0, 0.02);
    st.replicable = g.uniform01() < 0.5;
    st.noise_sigma = g.uniform(0.0, 0.08);
  }
  s.spec.messages.resize(n_full - 1);
  for (std::size_t i = 0; i + 1 < n_full; ++i) {
    s.spec.messages[i].bytes_per_track = g.uniform(20.0, 160.0);
  }

  const double period_ms = g.uniform(100.0, 1000.0);
  s.spec.period = SimDuration::millis(period_ms);
  s.spec.deadline = SimDuration::millis(period_ms * g.uniform(0.5, 1.0));

  const auto periods_full = static_cast<std::uint64_t>(g.uniformInt(8, 40));

  // Workload table: concatenated segments of holds, ramps, bursts, and
  // dropouts between a drawn min/max band. Dropouts stay strictly positive
  // (an all-zero period would make every latency estimate zero, which EQF
  // rejects by contract).
  const double min_tracks = g.uniform(50.0, 300.0);
  const double max_tracks = g.uniform(500.0, 3000.0);
  const double dropout_tracks = std::max(5.0, min_tracks * 0.1);
  double level = g.uniform(min_tracks, max_tracks);
  while (s.workload_tracks.size() < periods_full) {
    const std::int64_t kind = g.uniformInt(0, 3);
    const auto len = static_cast<std::uint64_t>(g.uniformInt(2, 10));
    if (kind == 0) {  // hold
      level = g.uniform(min_tracks, max_tracks);
      for (std::uint64_t p = 0; p < len; ++p) {
        s.workload_tracks.push_back(level);
      }
    } else if (kind == 1) {  // linear ramp to a new level
      const double target = g.uniform(min_tracks, max_tracks);
      for (std::uint64_t p = 0; p < len; ++p) {
        const double f = static_cast<double>(p + 1) / static_cast<double>(len);
        s.workload_tracks.push_back(level + (target - level) * f);
      }
      level = target;
    } else if (kind == 2) {  // burst to the band maximum
      const std::uint64_t blen = std::min<std::uint64_t>(len, 3);
      for (std::uint64_t p = 0; p < blen; ++p) {
        s.workload_tracks.push_back(max_tracks);
      }
    } else {  // dropout
      const std::uint64_t dlen = std::min<std::uint64_t>(len, 3);
      for (std::uint64_t p = 0; p < dlen; ++p) {
        s.workload_tracks.push_back(dropout_tracks);
      }
    }
  }
  s.workload_tracks.resize(periods_full);

  // Background-load plan: initial per-node targets plus a few step changes.
  s.background_targets.resize(s.node_count);
  for (std::size_t i = 0; i < s.node_count; ++i) {
    s.background_targets[i] = g.uniform(0.0, 0.4);
  }
  const std::int64_t n_steps = g.uniformInt(0, 3);
  for (std::int64_t i = 0; i < n_steps; ++i) {
    BackgroundStep step;
    step.period = static_cast<std::uint64_t>(
        g.uniformInt(1, static_cast<std::int64_t>(periods_full) - 1));
    step.node = static_cast<std::uint32_t>(
        g.uniformInt(0, static_cast<std::int64_t>(s.node_count) - 1));
    step.target = g.uniform(0.0, 0.6);
    s.background_steps.push_back(step);
  }

  // Optional co-resident task posting into the shared ledger (eq. 5's sum).
  if (g.uniform01() < 0.5) {
    s.coresident_tracks.resize(periods_full);
    for (std::uint64_t p = 0; p < periods_full; ++p) {
      s.coresident_tracks[p] = g.uniform(0.0, max_tracks * 0.5);
    }
  }

  // Manager knobs around the paper's Table-1 values.
  s.manager.monitor.slack_fraction = g.uniform(0.15, 0.3);
  s.manager.monitor.shutdown_slack_fraction = g.uniform(0.5, 0.7);
  s.manager.monitor.shutdown_hysteresis =
      static_cast<int>(g.uniformInt(2, 4));
  s.manager.action_latency = g.uniform01() < 0.3
                                 ? SimDuration::millis(g.uniform(1.0, 20.0))
                                 : SimDuration::zero();
  s.manager.allow_load_shedding = g.uniform01() < 0.3;

  // ---- fault-schedule draws ---------------------------------------------
  // Drawn for every seed, strictly after every base-scenario draw, so the
  // base scenario is byte-identical whether or not faults are applied, and
  // dropping faults is just one more truncation cap.
  fault::FaultPlan plan;
  plan.seed = seed ^ 0x9E3779B97F4A7C15ULL;
  const double horizon_ms = period_ms * static_cast<double>(periods_full);
  const auto nodes_i64 = static_cast<std::int64_t>(s.node_count);

  // Crashes: up to two distinct nodes, never node 0 — it runs the
  // heartbeat detector (which cannot declare its own home dead).
  const std::int64_t n_crashes =
      g.uniformInt(0, std::min<std::int64_t>(2, nodes_i64 - 1));
  std::vector<std::uint32_t> crashed;
  for (std::int64_t i = 0; i < 2; ++i) {
    auto node = static_cast<std::uint32_t>(g.uniformInt(1, nodes_i64 - 1));
    const double at_frac = g.uniform(0.1, 0.6);
    const bool restarts = g.uniform01() < 0.5;
    const double restart_periods = g.uniform(1.5, 5.0);
    if (i >= n_crashes) {
      continue;  // candidate drawn but unused (keeps the draw count fixed)
    }
    while (std::find(crashed.begin(), crashed.end(), node) != crashed.end()) {
      node = 1 + (node % static_cast<std::uint32_t>(nodes_i64 - 1));
    }
    crashed.push_back(node);
    fault::CrashFault c;
    c.node = ProcessorId{node};
    c.at = SimTime::zero() + SimDuration::millis(horizon_ms * at_frac);
    if (restarts) {
      c.restart_at =
          c.at + SimDuration::millis(period_ms * restart_periods);
    }
    plan.crashes.push_back(c);
  }

  // CPU throttle windows: distinct nodes (the injector applies edges
  // last-write-wins, so overlapping same-node windows would interleave).
  const std::int64_t n_throttles =
      g.uniformInt(0, std::min<std::int64_t>(2, nodes_i64));
  std::vector<std::uint32_t> throttled;
  for (std::int64_t i = 0; i < 2; ++i) {
    auto node = static_cast<std::uint32_t>(g.uniformInt(0, nodes_i64 - 1));
    const double from_frac = g.uniform(0.05, 0.6);
    const double len_periods = g.uniform(1.0, 5.0);
    const double factor = g.uniform(0.3, 0.9);
    if (i >= n_throttles) {
      continue;
    }
    while (std::find(throttled.begin(), throttled.end(), node) !=
           throttled.end()) {
      node = (node + 1) % static_cast<std::uint32_t>(nodes_i64);
    }
    throttled.push_back(node);
    fault::ThrottleFault t;
    t.node = ProcessorId{node};
    t.from = SimTime::zero() + SimDuration::millis(horizon_ms * from_frac);
    t.until = t.from + SimDuration::millis(period_ms * len_periods);
    t.factor = factor;
    plan.throttles.push_back(t);
  }

  // Frame loss / duplication windows. Loss stays moderate: a lost frame
  // retransmits, so loss trades wire time for delay and must not starve
  // the heartbeat path outright.
  const std::int64_t n_links = g.uniformInt(0, 2);
  for (std::int64_t i = 0; i < 2; ++i) {
    const bool src_any = g.uniform01() < 0.5;
    const auto src = static_cast<std::uint32_t>(g.uniformInt(0, nodes_i64 - 1));
    const bool dst_any = g.uniform01() < 0.5;
    const auto dst = static_cast<std::uint32_t>(g.uniformInt(0, nodes_i64 - 1));
    const double from_frac = g.uniform(0.05, 0.7);
    const double len_periods = g.uniform(0.5, 4.0);
    const double loss = g.uniform(0.0, 0.5);
    const double dup = g.uniform(0.0, 0.3);
    if (i >= n_links) {
      continue;
    }
    fault::LinkFault l;
    l.src = src_any ? fault::kAnyNode : ProcessorId{src};
    l.dst = dst_any ? fault::kAnyNode : ProcessorId{dst};
    l.from = SimTime::zero() + SimDuration::millis(horizon_ms * from_frac);
    l.until = l.from + SimDuration::millis(period_ms * len_periods);
    l.loss = loss;
    l.dup = dup;
    plan.links.push_back(l);
  }

  // Clock-sync outage: at most one window.
  const std::int64_t n_outages = g.uniformInt(0, 1);
  {
    const double from_frac = g.uniform(0.1, 0.7);
    const double len_periods = g.uniform(0.5, 3.0);
    if (n_outages > 0) {
      fault::ClockOutage o;
      o.from = SimTime::zero() + SimDuration::millis(horizon_ms * from_frac);
      o.until = o.from + SimDuration::millis(period_ms * len_periods);
      plan.clock_outages.push_back(o);
    }
  }

  // Decentralized-plane draws: appended after every node-fault draw, so
  // both the base scenario and the node-fault schedule of a seed are
  // byte-identical with and without manager faults.
  const auto managers_draw = static_cast<std::size_t>(g.uniformInt(2, 3));
  const auto mgr_target_draw =
      static_cast<std::uint32_t>(g.uniformInt(0, 7));
  const double mgr_crash_frac = g.uniform(0.15, 0.55);
  const bool mgr_restarts = g.uniform01() < 0.5;
  const double mgr_restart_periods = g.uniform(2.0, 6.0);

  // Scheduler and elastic-period draws: appended after the manager-plane
  // draws, so every narrower configuration of the seed keeps its exact
  // scenario (base, faults, plane) whether or not these dimensions apply.
  const auto sched_draw = static_cast<node::SchedPolicy>(g.uniformInt(
      0, static_cast<std::int64_t>(node::SchedPolicy::kLlf)));
  const double max_period_mult = g.uniform(1.25, 2.5);
  const double period_step_draw = g.uniform(0.1, 0.5);

  // Network-topology and workload-mix draws: appended after the sched and
  // elastic-period draws, so dropping either dimension reproduces the base
  // scenario (and every narrower dimension stack) byte for byte.
  const bool net_switched_draw = g.uniform01() < 0.75;
  const auto segments_draw =
      static_cast<std::size_t>(g.uniformInt(2, 4));
  const auto topo_draw = g.uniform01() < 0.5 ? net::FabricTopology::kLine
                                             : net::FabricTopology::kStar;
  const auto port_buffer_draw =
      static_cast<std::size_t>(g.uniformInt(8, 48));
  const auto mix_draw = static_cast<workload::WorkloadMix>(g.uniformInt(
      1, static_cast<std::int64_t>(workload::WorkloadMix::kMulti)));
  const double pareto_tail_draw = g.uniform(1.2, 2.5);
  const double pareto_scale_draw = g.uniform(0.2, 0.8);
  const double surge_join_draw = g.uniform(0.3, 1.0);
  const auto surge_sensors_draw =
      static_cast<std::size_t>(g.uniformInt(2, 5));
  const auto contender_flows_draw =
      static_cast<std::size_t>(g.uniformInt(1, 4));
  const double contender_payload_draw = g.uniform(4000.0, 40000.0);

  const bool apply_faults = with_faults && !shrink.drop_faults;
  const bool apply_manager_faults =
      with_manager_faults && !shrink.drop_manager_faults;
  if (apply_manager_faults) {
    s.managers = std::min(managers_draw, s.node_count);
    fault::ManagerCrashFault mc;
    mc.manager = mgr_target_draw % static_cast<std::uint32_t>(s.managers);
    mc.at =
        SimTime::zero() + SimDuration::millis(horizon_ms * mgr_crash_frac);
    if (mgr_restarts) {
      mc.restart_at =
          mc.at + SimDuration::millis(period_ms * mgr_restart_periods);
    }
    plan.manager_crashes.push_back(mc);
  }
  if (!apply_faults) {
    plan.crashes.clear();
    plan.throttles.clear();
    plan.links.clear();
    plan.clock_outages.clear();
  }
  if (apply_faults || apply_manager_faults) {
    s.faults = std::move(plan);
  }
  if (with_sched && !shrink.drop_sched) {
    s.sched = sched_draw;
  }
  if (with_period_adjust && !shrink.drop_period_adjust) {
    s.spec.max_period = SimDuration::millis(period_ms * max_period_mult);
    s.manager.allow_period_adjust = true;
    s.manager.period_adjust_step = period_step_draw;
  }
  if (with_net_topology && !shrink.drop_net_topology && net_switched_draw) {
    s.net_kind = net::NetKind::kSwitched;
    s.fabric.segments = std::min(segments_draw, s.node_count);
    s.fabric.topology = topo_draw;
    s.fabric.port_buffer_frames = port_buffer_draw;
  }
  if (with_workload_mix && !shrink.drop_workload_mix) {
    s.workload_mix = mix_draw;
    if (mix_draw == workload::WorkloadMix::kPareto) {
      // Heavy-tailed rewrite of the offered table, anchored on the band
      // already drawn for the base scenario. Generator draws are pure
      // per-period functions, so the rewrite itself consumes no RNG state.
      workload::ParetoParams pp;
      pp.floor = DataSize::tracks(min_tracks);
      pp.scale = DataSize::tracks(max_tracks * pareto_scale_draw);
      pp.tail_index = pareto_tail_draw;
      pp.cap = DataSize::tracks(max_tracks * 4.0);
      const workload::ParetoArrivals gen(pp, seed);
      for (std::uint64_t p = 0; p < periods_full; ++p) {
        s.workload_tracks[p] = gen.at(p).count();
      }
    } else if (mix_draw == workload::WorkloadMix::kSurge) {
      workload::SurgeParams sp;
      sp.baseline = DataSize::tracks(min_tracks);
      sp.amplitude = DataSize::tracks(
          (max_tracks - min_tracks) /
          static_cast<double>(surge_sensors_draw));
      sp.join_probability = surge_join_draw;
      const workload::CorrelatedSurge gen(sp, surge_sensors_draw, seed);
      const auto fused = gen.fusedPattern();
      for (std::uint64_t p = 0; p < periods_full; ++p) {
        s.workload_tracks[p] = fused->at(p).count();
      }
    } else {  // kMulti keeps the table; contender flows ride the substrate
      s.contenders.flows = contender_flows_draw;
      s.contenders.payload = Bytes::of(contender_payload_draw);
      s.contenders.period = SimDuration::millis(period_ms * 0.25);
      s.contenders.seed = seed ^ 0x9E3779B97F4A7C15ULL;
    }
  }

  // ---- all RNG draws done; apply the shrink caps by truncation ----------

  std::size_t n = n_full;
  if (shrink.max_subtasks > 0) {
    n = std::min(n_full, std::max<std::size_t>(2, shrink.max_subtasks));
  }
  s.spec.subtasks.resize(n);
  s.spec.messages.resize(n - 1);
  // The monitor only ever acts on replicable stages; keep at least one so
  // every scenario exercises the allocators.
  bool any_replicable = false;
  for (const task::SubtaskSpec& st : s.spec.subtasks) {
    any_replicable = any_replicable || st.replicable;
  }
  if (!any_replicable) {
    s.spec.subtasks.back().replicable = true;
  }

  s.periods = periods_full;
  if (shrink.max_periods > 0) {
    s.periods = std::min(periods_full, std::max<std::uint64_t>(3, shrink.max_periods));
  }

  if (shrink.flatten_workload) {
    double mean = 0.0;
    for (std::uint64_t p = 0; p < s.periods; ++p) {
      mean += s.workload_tracks[p];
    }
    mean /= static_cast<double>(s.periods);
    std::fill(s.workload_tracks.begin(), s.workload_tracks.end(), mean);
  }

  s.manager.d_init = DataSize::tracks(s.workload_tracks.front());

  // Ground-truth-derived planning models: eq.-3 coefficients seeded from
  // the true cost with first-order contention inflation in u. The oracle's
  // invariants must hold for *any* models, so accuracy is not the point —
  // plausibility is, so both allocators make non-degenerate decisions.
  s.models.exec.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    regress::ExecLatencyModel& m = s.models.exec[i];
    m.a3 = s.spec.subtasks[i].cost.alpha_ms;
    m.a2 = s.spec.subtasks[i].cost.alpha_ms;
    m.b3 = s.spec.subtasks[i].cost.beta_ms;
    m.b2 = s.spec.subtasks[i].cost.beta_ms;
  }

  s.spec.validate();
  return s;
}

FuzzCaseResult runFuzzCase(const FuzzScenario& scenario, AllocatorKind kind,
                           obs::Observability* obs,
                           const FuzzExecConfig& exec) {
  apps::ScenarioConfig sc;
  sc.node_count = scenario.node_count;
  sc.seed = scenario.seed;
  sc.cpu.policy = scenario.sched;
  sc.net_kind = scenario.net_kind;
  sc.fabric = scenario.fabric;
  // The fuzz plan drives per-node targets itself.
  sc.ambient_load = Utilization::zero();
  sc.sim_shards = exec.sim_shards;
  sc.sim_mode = exec.sim_mode;
  sc.sim_lookahead = exec.lookahead;
  apps::Scenario testbed(sc);

  for (std::size_t i = 0; i < scenario.node_count; ++i) {
    testbed.cluster()
        .backgroundLoad(ProcessorId{static_cast<std::uint32_t>(i)})
        .setTarget(Utilization::fraction(scenario.background_targets[i]));
  }
  for (const BackgroundStep& step : scenario.background_steps) {
    if (step.period >= scenario.periods) {
      continue;
    }
    // setBackgroundTarget is cross-shard safe: direct on the legacy path,
    // a barrier post when the node lives on another shard.
    testbed.sim().scheduleAt(
        SimTime::zero() +
            scenario.spec.period * static_cast<double>(step.period),
        [&cluster = testbed.cluster(), step] {
          cluster.setBackgroundTarget(ProcessorId{step.node},
                                      Utilization::fraction(step.target));
        });
  }

  core::WorkloadLedger ledger;
  core::WorkloadLedger::TaskId co_id{};
  if (!scenario.coresident_tracks.empty()) {
    co_id = ledger.registerTask("co-resident");
  }

  const TablePattern pattern(scenario.workload_tracks);

  std::vector<ProcessorId> homes;
  homes.reserve(scenario.spec.stageCount());
  for (std::size_t i = 0; i < scenario.spec.stageCount(); ++i) {
    homes.push_back(
        ProcessorId{static_cast<std::uint32_t>(i % scenario.node_count)});
  }

  std::unique_ptr<core::Allocator> allocator;
  if (kind == AllocatorKind::kPredictive) {
    allocator = std::make_unique<core::PredictiveAllocator>(scenario.models);
  } else {
    allocator = std::make_unique<core::NonPredictiveAllocator>();
  }

  sim::TraceRecorder trace;
  OracleConfig oracle_config;
  // Recovery budget: twice the detector's worst-case detection latency
  // (timeout plus one declaring tick per retry plus one interval) plus two
  // task periods for the manager to re-place and settle.
  oracle_config.recovery_grace_ms =
      2.0 * (scenario.detector.timeout.ms() +
             static_cast<double>(scenario.detector.max_retries + 1) *
                 scenario.detector.interval.ms()) +
      2.0 * scenario.spec.period.ms();
  InvariantOracle oracle(oracle_config);
  oracle.watch(testbed.sim());
  oracle.watch(testbed.cluster());
  oracle.watch(testbed.net());
  oracle.watch(ledger);

  core::ResourceManager manager(
      testbed.runtime(), scenario.spec, task::Placement(homes),
      [&pattern](std::uint64_t period) { return pattern.at(period); },
      std::move(allocator), scenario.models, scenario.manager,
      testbed.streams().get("exec-noise"));
  manager.attachLedger(ledger);
  manager.attachTrace(trace);
  if (obs != nullptr) {
    manager.attachObs(*obs);
  }
  oracle.watch(manager);

  // Decentralized plane: only built when the scenario drew more than one
  // manager endpoint, so every single-manager digest is untouched. The
  // gossip cadence scales with the task period; the staleness bound is
  // four gossip intervals.
  std::unique_ptr<core::ManagementPlane> plane;
  if (scenario.managers > 1) {
    core::PlaneConfig pc;
    pc.managers = scenario.managers;
    pc.gossip_interval = scenario.spec.period * 0.2;
    pc.staleness_bound = scenario.spec.period * 0.8;
    plane = std::make_unique<core::ManagementPlane>(
        testbed.sim(), testbed.net(), testbed.cluster(), pc);
    plane->adopt(manager);
    if (obs != nullptr) {
      plane->attachObs(*obs);
    }
    oracle.watch(*plane);
  }

  // Fault path: injector compiles the plan into events, the heartbeat
  // detector drives the manager's failover, and the oracle times recovery.
  // With an empty plan nothing below exists and the run is byte-identical
  // to a faultless build.
  std::unique_ptr<fault::FaultInjector> injector;
  std::unique_ptr<fault::FailureDetector> detector;
  std::unique_ptr<fault::FailureDetector> mgr_detector;
  if (!scenario.faults.empty()) {
    injector = std::make_unique<fault::FaultInjector>(
        testbed.sim(), testbed.cluster(), &testbed.net(),
        &testbed.clocks(), scenario.faults);
    if (plane != nullptr) {
      injector->setManagerFaultTarget(
          scenario.managers,
          [p = plane.get()](std::uint32_t m, bool up) {
            p->setManagerUp(m, up);
          });
    }
    oracle.watch(*injector);
    injector->arm();
    detector = std::make_unique<fault::FailureDetector>(
        testbed.sim(), testbed.cluster(), testbed.net(),
        scenario.detector,
        [&manager, &cluster = testbed.cluster(),
         p = plane.get()](ProcessorId pid) {
          // Heavy frame loss can delay acks past the timeout and declare a
          // live node dead; failover only makes sense for real crashes.
          if (!cluster.isUp(pid)) {
            // With a decentralized plane the death routes through it: only
            // a live active repairs placements, anything else is queued
            // for the next election.
            if (p != nullptr) {
              p->handleNodeFailure(pid);
            } else {
              manager.handleNodeFailure(pid);
            }
          }
        },
        [&manager, &cluster = testbed.cluster(),
         p = plane.get()](ProcessorId pid) {
          if (cluster.isUp(pid)) {
            if (p != nullptr) {
              p->handleNodeRestart(pid);
            } else {
              manager.handleNodeRestart(pid);
            }
          }
        });
  }
  // A second, target-mode detector monitors the manager endpoints
  // themselves and drives elections (satellite of the same heartbeat
  // machinery the node detector uses).
  if (plane != nullptr) {
    std::vector<fault::DetectorTarget> targets;
    targets.reserve(scenario.managers);
    for (std::uint32_t mi = 0;
         mi < static_cast<std::uint32_t>(scenario.managers); ++mi) {
      targets.push_back(fault::DetectorTarget{
          mi, plane->hostOf(mi),
          [p = plane.get(), mi] { return p->endpointReachable(mi); }});
    }
    mgr_detector = std::make_unique<fault::FailureDetector>(
        testbed.sim(), testbed.net(), scenario.detector,
        std::move(targets),
        [p = plane.get()](std::uint32_t m) { p->onManagerSuspected(m); },
        [p = plane.get()](std::uint32_t m) { p->onManagerRecovered(m); });
  }

  // Multi-pipeline mix: contender flows posting on the network substrate,
  // contending with the pipeline (and heartbeats) for fabric capacity.
  // Their draws are pure functions of (contender seed, flow, tick), so
  // they never perturb any other component's RNG stream.
  std::unique_ptr<workload::ContenderTraffic> contenders;
  if (scenario.workload_mix == workload::WorkloadMix::kMulti) {
    contenders = std::make_unique<workload::ContenderTraffic>(
        testbed.sim(), testbed.net(), scenario.node_count,
        scenario.contenders);
  }

  std::unique_ptr<sim::PeriodicActivity> poster;
  if (!scenario.coresident_tracks.empty()) {
    poster = std::make_unique<sim::PeriodicActivity>(
        testbed.sim(), scenario.spec.period,
        [&ledger, co_id, &scenario](std::uint64_t c) {
          const std::vector<double>& t = scenario.coresident_tracks;
          const std::size_t i =
              c < t.size() ? static_cast<std::size_t>(c) : t.size() - 1;
          ledger.post(co_id, DataSize::tracks(t[i]));
        });
  }

  if (contenders != nullptr) {
    contenders->start();
  }
  manager.start(testbed.sim().now());
  if (plane != nullptr) {
    plane->start(testbed.sim().now());
  }
  if (poster != nullptr) {
    poster->start(testbed.sim().now());
  }
  if (detector != nullptr) {
    detector->start(testbed.sim().now());
  }
  if (mgr_detector != nullptr) {
    mgr_detector->start(testbed.sim().now());
  }
  testbed.runFor(scenario.spec.period *
                 static_cast<double>(scenario.periods));
  manager.stop();
  if (detector != nullptr) {
    detector->stop();
  }
  if (mgr_detector != nullptr) {
    mgr_detector->stop();
  }
  if (poster != nullptr) {
    poster->stop();
  }
  // The plane keeps gossiping through the drain so every post-event sweep
  // still sees a fresh view; it stops (closing any open gap) only before
  // the final sweep.
  testbed.runFor(scenario.spec.period * 2.0);
  if (plane != nullptr) {
    plane->stop();
  }
  oracle.sweep();

  FuzzCaseResult out;
  out.violations = oracle.violationCount();
  out.checks = oracle.checksRun();
  if (!oracle.ok()) {
    out.report = oracle.report();
  }

  // Fabric frame conservation: the NACK path delays frames, it never
  // destroys them, so at every instant (including now, mid-drain if
  // anything is still queued) chunked == arrived + live recount.
  if (scenario.net_kind == net::NetKind::kSwitched) {
    const net::SwitchedFabric& fab = testbed.fabric();
    ++out.checks;
    if (fab.framesOriginated() !=
        fab.framesArrived() + fab.framesInFabric()) {
      ++out.violations;
      out.report += "fabric frame conservation violated: originated=" +
                    std::to_string(fab.framesOriginated()) +
                    " arrived=" + std::to_string(fab.framesArrived()) +
                    " in-fabric=" + std::to_string(fab.framesInFabric()) +
                    "\n";
    }
  }

  // Byte-exact digest of everything observable about the run.
  std::string& d = out.digest;
  for (const sim::TraceEvent& e : trace.events()) {
    appendHex(d, e.at.ms());
    d += sim::traceCategoryName(e.category);
    d += ',';
    d += e.label;
    d += ',';
    appendHex(d, e.value);
    d += '\n';
  }
  const core::EpisodeMetrics& m = manager.metrics();
  appendHex(d, m.missedRatio());
  appendHex(d, m.cpu_utilization.mean());
  appendHex(d, m.net_utilization.mean());
  appendHex(d, m.replicas_per_subtask.mean());
  appendHex(d, m.end_to_end_ms.mean());
  appendHex(d, m.shed_fraction.mean());
  appendCount(d, m.replicate_actions);
  appendCount(d, m.shutdown_actions);
  appendCount(d, m.allocation_failures);
  appendCount(d, trace.dropped());
  appendCount(d, testbed.net().messagesDelivered());
  appendCount(d, testbed.net().framesOnWire());
  appendHex(d, testbed.net().payloadBytesCarried());
  appendHex(d, testbed.sim().now().ms());
  appendCount(d, oracle.checksRun());
  if (injector != nullptr) {
    appendCount(d, injector->crashesInjected());
    appendCount(d, injector->restartsInjected());
    appendCount(d, injector->throttleEdges());
    appendCount(d, detector->heartbeatsSent());
    appendCount(d, detector->acksReceived());
    appendCount(d, detector->declaredDead());
    appendCount(d, detector->declaredRecovered());
    appendCount(d, testbed.net().framesLost());
    appendCount(d, testbed.net().framesDuplicated());
    appendCount(d, testbed.clocks().syncRoundsSkipped());
    appendCount(d, m.node_failures_handled);
    appendCount(d, m.failover_replacements);
    appendCount(d, m.recovery_allocation_failures);
  }
  // Both sections keyed on the scenario, not runtime state, so a digest is
  // comparable across runs of the same scenario; absent in the baseline
  // configuration so every historical digest is untouched.
  if (scenario.sched != node::SchedPolicy::kRoundRobin) {
    d += node::schedPolicyName(scenario.sched);
    d += ',';
  }
  if (scenario.manager.allow_period_adjust) {
    appendCount(d, m.period_dilations);
    appendCount(d, m.period_contractions);
    appendHex(d, m.period_scale.mean());
    appendHex(d, manager.currentPeriod().ms());
  }
  if (plane != nullptr) {
    appendCount(d, plane->gossipRounds());
    appendCount(d, plane->gossipMessagesSent());
    appendCount(d, plane->summariesApplied());
    appendCount(d, plane->elections());
    appendCount(d, plane->epoch());
    appendCount(d, m.suppressed_decision_periods);
    appendHex(d, plane->decisionGapMs());
    appendHex(d, plane->maxStalenessObservedMs());
    if (mgr_detector != nullptr) {
      appendCount(d, mgr_detector->heartbeatsSent());
      appendCount(d, mgr_detector->acksReceived());
      appendCount(d, mgr_detector->declaredDead());
      appendCount(d, mgr_detector->declaredRecovered());
    }
  }
  // Fabric and workload-mix sections: keyed on the scenario and absent in
  // the baseline configuration, so every historical digest is untouched.
  if (scenario.net_kind == net::NetKind::kSwitched) {
    const net::SwitchedFabric& fab = testbed.fabric();
    d += net::fabricTopologyName(scenario.fabric.topology);
    d += ',';
    appendCount(d, scenario.fabric.segments);
    appendCount(d, fab.framesOriginated());
    appendCount(d, fab.framesArrived());
    appendCount(d, fab.framesDropped());
  }
  if (scenario.workload_mix != workload::WorkloadMix::kPaper) {
    d += workload::workloadMixName(scenario.workload_mix);
    d += ',';
    if (contenders != nullptr) {
      appendCount(d, contenders->messagesPosted());
    }
  }

  // Observability reconciliation: the obs trace/registry, EpisodeMetrics,
  // and the oracle's independent observation counters must tell the same
  // story. Runs strictly after the digest so an attached obs bundle can
  // never perturb it.
  if (obs != nullptr) {
    testbed.sim().exportMetrics(obs->metrics);
    testbed.net().exportMetrics(obs->metrics);
    testbed.cluster().exportMetrics(obs->metrics);
    manager.exportMetrics(obs->metrics);
    if (detector != nullptr) {
      detector->exportMetrics(obs->metrics);
    }
    if (plane != nullptr) {
      plane->exportMetrics(obs->metrics);
    }

    std::string& r = out.obs_mismatch;
    const obs::TraceBuffer& tb = obs->trace;
    reconcile(r, "misses", tb.count(obs::RecordKind::kMiss),
              m.missed_deadlines.hits(), oracle.missesObserved());
    reconcile(r, "effective-replications",
              tb.count(obs::RecordKind::kReplicate), m.replicate_actions,
              oracle.effectiveAllocationsObserved());
    reconcile(r, "shutdowns", tb.count(obs::RecordKind::kShutdown),
              m.shutdown_actions, m.shutdown_actions);
    reconcile(r, "allocation-failures",
              tb.count(obs::RecordKind::kAllocFailure), m.allocation_failures,
              m.allocation_failures);
    const obs::Counter* delivered =
        obs->metrics.findCounter("net.messages_delivered");
    reconcile(r, "deliveries", delivered != nullptr ? delivered->value() : 0,
              testbed.net().messagesDelivered(),
              oracle.receiptsObserved());
    const obs::Counter* reg_misses =
        obs->metrics.findCounter("core.missed_deadlines");
    reconcile(r, "registry-misses",
              reg_misses != nullptr ? reg_misses->value() : 0,
              m.missed_deadlines.hits(), oracle.missesObserved());
    const obs::Counter* reg_repl =
        obs->metrics.findCounter("core.replicate_actions");
    reconcile(r, "registry-replications",
              reg_repl != nullptr ? reg_repl->value() : 0,
              m.replicate_actions, oracle.effectiveAllocationsObserved());
  }
  return out;
}

FuzzOutcome runFuzzSeed(std::uint64_t seed, const ShrinkSpec& shrink,
                        bool with_faults, const FuzzExecConfig& exec,
                        bool with_manager_faults, bool with_sched,
                        bool with_period_adjust, bool with_net_topology,
                        bool with_workload_mix) {
  const FuzzScenario scenario =
      makeFuzzScenario(seed, shrink, with_faults, with_manager_faults,
                       with_sched, with_period_adjust, with_net_topology,
                       with_workload_mix);
  FuzzOutcome out;
  for (const AllocatorKind kind :
       {AllocatorKind::kPredictive, AllocatorKind::kNonPredictive}) {
    const FuzzCaseResult first = runFuzzCase(scenario, kind, nullptr, exec);
    out.checks += first.checks;
    if (first.violations > 0) {
      out.invariants_ok = false;
      out.violations += first.violations;
      if (out.detail.empty()) {
        out.detail = std::string(allocatorKindName(kind)) + ": " +
                     first.report;
      }
    }
    // Replay with the identical scenario: any divergence means hidden
    // nondeterminism (iteration order, uninitialized state, time leaks).
    const FuzzCaseResult replay = runFuzzCase(scenario, kind, nullptr, exec);
    if (replay.digest != first.digest) {
      out.deterministic = false;
      if (out.detail.empty()) {
        out.detail = std::string(allocatorKindName(kind)) +
                     ": replay digest diverged (" +
                     std::to_string(first.digest.size()) + " vs " +
                     std::to_string(replay.digest.size()) + " bytes)";
      }
    }
  }
  return out;
}

ShrinkSpec minimize(std::uint64_t seed, const ShrinkSpec& initial,
                    const FailsFn& fails, bool with_faults,
                    bool with_manager_faults, bool with_sched,
                    bool with_period_adjust, bool with_net_topology,
                    bool with_workload_mix) {
  ShrinkSpec current = initial;
  bool improved = true;
  while (improved) {
    improved = false;
    const FuzzScenario s = makeFuzzScenario(seed, current);

    // Simplest explanation first: does the failure survive on the shared
    // bus, with the paper workload family, on the baseline scheduler,
    // without the elastic lever, without the decentralized-plane
    // dimension, or without any faults at all?
    if (with_net_topology && !current.drop_net_topology) {
      ShrinkSpec c = current;
      c.drop_net_topology = true;
      if (fails(seed, c)) {
        current = c;
        improved = true;
        continue;
      }
    }
    if (with_workload_mix && !current.drop_workload_mix) {
      ShrinkSpec c = current;
      c.drop_workload_mix = true;
      if (fails(seed, c)) {
        current = c;
        improved = true;
        continue;
      }
    }
    if (with_sched && !current.drop_sched) {
      ShrinkSpec c = current;
      c.drop_sched = true;
      if (fails(seed, c)) {
        current = c;
        improved = true;
        continue;
      }
    }
    if (with_period_adjust && !current.drop_period_adjust) {
      ShrinkSpec c = current;
      c.drop_period_adjust = true;
      if (fails(seed, c)) {
        current = c;
        improved = true;
        continue;
      }
    }
    if (with_manager_faults && !current.drop_manager_faults) {
      ShrinkSpec c = current;
      c.drop_manager_faults = true;
      if (fails(seed, c)) {
        current = c;
        improved = true;
        continue;
      }
    }
    if (with_faults && !current.drop_faults) {
      ShrinkSpec c = current;
      c.drop_faults = true;
      if (fails(seed, c)) {
        current = c;
        improved = true;
        continue;
      }
    }

    // Fewer subtasks: jump straight to the floor, else one less.
    if (s.spec.stageCount() > 2) {
      for (const std::size_t target :
           {static_cast<std::size_t>(2), s.spec.stageCount() - 1}) {
        ShrinkSpec c = current;
        c.max_subtasks = target;
        if (fails(seed, c)) {
          current = c;
          improved = true;
          break;
        }
      }
      if (improved) {
        continue;
      }
    }

    // Shorter horizon: floor, halved, then just one less.
    if (s.periods > 3) {
      for (const std::uint64_t target :
           {static_cast<std::uint64_t>(3), s.periods / 2, s.periods - 1}) {
        if (target >= s.periods) {
          continue;
        }
        ShrinkSpec c = current;
        c.max_periods = std::max<std::uint64_t>(3, target);
        if (fails(seed, c)) {
          current = c;
          improved = true;
          break;
        }
      }
      if (improved) {
        continue;
      }
    }

    // Flatter workload.
    if (!current.flatten_workload) {
      ShrinkSpec c = current;
      c.flatten_workload = true;
      if (fails(seed, c)) {
        current = c;
        improved = true;
      }
    }
  }
  return current;
}

}  // namespace rtdrm::check
