// Deterministic scenario fuzzer over the full simulated stack.
//
// Every scenario is a pure function of (seed, ShrinkSpec): cluster size,
// task pipeline, workload table (composed ramps / bursts / dropouts),
// background-load schedule, and an optional co-resident workload poster are
// all drawn from a named RNG stream. Each scenario runs under both the
// predictive (Fig. 5) and non-predictive (Fig. 7) allocators with the
// InvariantOracle watching every event, and is run twice per allocator to
// prove same-seed replay produces a byte-identical trace digest.
//
// Shrinking works by *capping* the generated scenario after all RNG draws
// (truncate subtasks, truncate the horizon, flatten the workload to its
// mean) — the draws themselves never change, so a failing seed stays the
// same scenario family while it shrinks to a minimal reproducer.
//
// With faults enabled (--faults) every seed additionally grows a fault
// schedule — node crashes (with optional restart), CPU throttle windows,
// frame loss/duplication windows, clock-sync outages — injected through
// fault::FaultInjector with a heartbeat FailureDetector driving the
// manager's failover path. The fault draws are appended *after* every
// base-scenario draw, so the base scenario of a seed is byte-identical
// with and without faults, and `drop_faults` is just one more shrink cap.
//
// With manager faults additionally enabled (--manager-faults) every seed
// draws a decentralized-plane dimension — a manager-endpoint count of 2-3
// and one manager crash (with optional restart) — appended after the node
// fault draws, so both the base scenario and the node-fault schedule of a
// seed stay byte-identical with and without it. The run then builds a
// core::ManagementPlane, a second target-mode FailureDetector over the
// manager endpoints, and the plane invariants (election uniqueness, no
// deposed decisions, bounded gossip staleness) join the oracle.
//
// With the scheduler dimension enabled (--sched) every seed additionally
// draws a node scheduling policy (RR/FIFO/priority/EDF/RMS/LLF) for the
// whole cluster, and with elastic periods enabled (--period-adjust) an
// elastic bound plus adjustment step for the manager's period lever. Both
// draws are appended after the manager-plane draws, so every narrower
// configuration of the same seed is byte-identical, and each dimension is
// one more shrink cap (drop_sched / drop_period_adjust).
//
// With the network-topology dimension enabled (--net-topology) every seed
// draws a network substrate — bus, or a switched fabric with 2-4 segments,
// line or star topology, and a bounded port buffer — and with the
// workload-mix dimension enabled (--workload-mix) a workload family
// (pareto / surge / multi) whose parameters ride on the band already drawn
// for the base table. Both draws are appended after the sched/period
// draws, so the `--drop-net-topology` / `--drop-workload-mix` caps
// reproduce the base digests byte for byte. Switched runs additionally
// check the fabric's frame-conservation invariant at the end of the run.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "check/invariants.hpp"
#include "common/parallel.hpp"
#include "core/models.hpp"
#include "fault/detector.hpp"
#include "fault/plan.hpp"
#include "net/fabric.hpp"
#include "node/sched_policy.hpp"
#include "task/spec.hpp"
#include "workload/generators.hpp"
#include "workload/patterns.hpp"

namespace rtdrm::obs {
struct Observability;
}  // namespace rtdrm::obs

namespace rtdrm::check {

/// Caps the shrinker applies to a generated scenario (0 / false = uncapped).
struct ShrinkSpec {
  /// Keep at most this many subtasks (floor 2; 0 = uncapped).
  std::size_t max_subtasks = 0;
  /// Run at most this many periods (floor 3; 0 = uncapped).
  std::uint64_t max_periods = 0;
  /// Replace the workload table with a constant at its mean.
  bool flatten_workload = false;
  /// Strip the fault schedule (only meaningful when faults are enabled).
  bool drop_faults = false;
  /// Strip the decentralized-plane dimension: back to one manager and no
  /// manager crashes (only meaningful when manager faults are enabled).
  bool drop_manager_faults = false;
  /// Back to the Round-Robin baseline scheduler (only meaningful when the
  /// scheduler dimension is enabled).
  bool drop_sched = false;
  /// Strip the elastic-period dimension: inelastic spec, lever off (only
  /// meaningful when period adjustment is enabled).
  bool drop_period_adjust = false;
  /// Back to the shared bus (only meaningful when the network-topology
  /// dimension is enabled).
  bool drop_net_topology = false;
  /// Back to the paper workload family (only meaningful when the
  /// workload-mix dimension is enabled).
  bool drop_workload_mix = false;

  bool unshrunk() const {
    return max_subtasks == 0 && max_periods == 0 && !flatten_workload &&
           !drop_faults && !drop_manager_faults && !drop_sched &&
           !drop_period_adjust && !drop_net_topology && !drop_workload_mix;
  }
  /// Command-line fragment reproducing these caps (" --max-subtasks=3 ...";
  /// empty when unshrunk).
  std::string cliFlags() const;
};

/// A workload pattern backed by a precomputed per-period table; periods
/// beyond the table hold the last level.
class TablePattern final : public workload::Pattern {
 public:
  explicit TablePattern(std::vector<double> tracks)
      : tracks_(std::move(tracks)) {}
  DataSize at(std::uint64_t period) const override {
    if (tracks_.empty()) {
      return DataSize::zero();
    }
    const std::size_t i =
        period < tracks_.size() ? static_cast<std::size_t>(period)
                                : tracks_.size() - 1;
    return DataSize::tracks(tracks_[i]);
  }
  std::string name() const override { return "fuzz-table"; }

 private:
  std::vector<double> tracks_;
};

/// A step change in one node's background-load target.
struct BackgroundStep {
  std::uint64_t period = 0;
  std::uint32_t node = 0;
  double target = 0.0;
};

/// One fully generated fuzz scenario.
struct FuzzScenario {
  std::uint64_t seed = 0;
  std::size_t node_count = 0;
  std::uint64_t periods = 0;
  task::TaskSpec spec;
  /// Offered workload per period, in tracks (the composed pattern table).
  std::vector<double> workload_tracks;
  /// Initial per-node background-load targets (utilization fractions).
  std::vector<double> background_targets;
  std::vector<BackgroundStep> background_steps;
  /// Per-period workload a co-resident task posts to the shared ledger
  /// (empty = single-task deployment).
  std::vector<double> coresident_tracks;
  core::ManagerConfig manager;
  core::PredictiveModels models;
  /// Fault schedule (empty unless generated with faults enabled — an empty
  /// plan injects nothing and wires no detector, so the run matches the
  /// faultless build byte for byte).
  fault::FaultPlan faults;
  /// Heartbeat detector configuration used when `faults` is non-empty
  /// (also reused, with home node 0, for the manager-endpoint detector).
  fault::DetectorConfig detector;
  /// Manager endpoints; > 1 only when generated with manager faults, and
  /// then `faults.manager_crashes` carries the crash schedule.
  std::size_t managers = 1;
  /// Cluster-wide node scheduling policy; non-RR only when generated with
  /// the scheduler dimension enabled.
  node::SchedPolicy sched = node::SchedPolicy::kRoundRobin;
  /// Network substrate; kSwitched only when generated with the
  /// network-topology dimension enabled (and the seed drew switched).
  net::NetKind net_kind = net::NetKind::kBus;
  /// Fabric shape when net_kind == kSwitched (link parameters are the
  /// scenario defaults, as on the bus path).
  net::SwitchedFabricConfig fabric{};
  /// Workload family; non-paper only when generated with the workload-mix
  /// dimension enabled. kPareto/kSurge rewrite `workload_tracks` from the
  /// corresponding generator (pure per-period draws); kMulti keeps the
  /// table and adds contender flows on the network substrate.
  workload::WorkloadMix workload_mix = workload::WorkloadMix::kPaper;
  workload::ContenderConfig contenders{};

  std::string summary() const;
};

/// Generates the scenario for `seed` under the given caps. Caps only
/// truncate/flatten the already-drawn scenario, so every cap combination of
/// the same seed shares the same underlying draws. `with_faults` attaches
/// the seed's fault schedule (drawn either way, appended after every base
/// draw, so the base scenario is identical with and without it).
FuzzScenario makeFuzzScenario(std::uint64_t seed, const ShrinkSpec& shrink = {},
                              bool with_faults = false,
                              bool with_manager_faults = false,
                              bool with_sched = false,
                              bool with_period_adjust = false,
                              bool with_net_topology = false,
                              bool with_workload_mix = false);

enum class AllocatorKind { kPredictive, kNonPredictive };
const char* allocatorKindName(AllocatorKind kind);

/// How the event kernel executes a fuzz case. The default (one shard) is
/// the legacy single-queue path every historical digest was produced on.
/// With shards > 1 the testbed runs on the sharded engine; deterministic
/// mode must produce the same digest for any worker-thread count — the
/// determinism suite runs identical (seed, shards) pairs across
/// parallel::setThreads() values and compares digests byte for byte.
struct FuzzExecConfig {
  std::size_t sim_shards = 1;
  parallel::SimMode sim_mode = parallel::SimMode::kDeterministic;
  /// Barrier-window sizing policy (sharded runs only). Digests must be
  /// byte-identical across policies — the adaptive-vs-static parity suite
  /// runs identical (seed, shards) pairs in both and compares.
  parallel::LookaheadPolicy lookahead = parallel::LookaheadPolicy::kAdaptive;
};

/// Outcome of one scenario run under one allocator.
struct FuzzCaseResult {
  std::uint64_t violations = 0;
  std::uint64_t checks = 0;  ///< oracle checks run during this case
  std::string report;        ///< oracle report (empty when clean)
  /// Byte-exact digest of the run (trace events + metrics + substrate
  /// counters, hex-float formatted). Identical seeds must produce
  /// identical digests.
  std::string digest;
  /// Observability reconciliation report (only when an obs bundle was
  /// passed): empty when the obs trace/metrics totals agree with
  /// EpisodeMetrics and the oracle's own observation counters, else one
  /// line per disagreement.
  std::string obs_mismatch;
};

/// Runs one scenario under one allocator with the oracle attached. When
/// `obs` is non-null the manager records its decision audit into it, every
/// substrate exports its counters at the end, and the three accounting
/// sources (obs, EpisodeMetrics, oracle) are reconciled into
/// `obs_mismatch`. The digest is computed identically either way — the
/// neutrality tests rely on that.
FuzzCaseResult runFuzzCase(const FuzzScenario& scenario, AllocatorKind kind,
                           obs::Observability* obs = nullptr,
                           const FuzzExecConfig& exec = {});

/// Aggregate verdict for one seed: both allocators, each run twice.
struct FuzzOutcome {
  bool invariants_ok = true;
  bool deterministic = true;
  std::uint64_t violations = 0;
  std::uint64_t checks = 0;
  std::string detail;  ///< first failure description (empty when clean)

  bool failed() const { return !invariants_ok || !deterministic; }
};

FuzzOutcome runFuzzSeed(std::uint64_t seed, const ShrinkSpec& shrink = {},
                        bool with_faults = false,
                        const FuzzExecConfig& exec = {},
                        bool with_manager_faults = false,
                        bool with_sched = false,
                        bool with_period_adjust = false,
                        bool with_net_topology = false,
                        bool with_workload_mix = false);

/// Failure predicate: does `seed` under these caps still fail?
using FailsFn = std::function<bool(std::uint64_t, const ShrinkSpec&)>;

/// Greedy shrink: starting from `initial` (which must fail), repeatedly
/// tries harsher caps — dropped faults (when enabled), fewer subtasks,
/// shorter horizon, flat workload — keeping each cap that still fails,
/// until no harsher cap does. Returns the harshest failing ShrinkSpec
/// found.
ShrinkSpec minimize(std::uint64_t seed, const ShrinkSpec& initial,
                    const FailsFn& fails, bool with_faults = false,
                    bool with_manager_faults = false,
                    bool with_sched = false,
                    bool with_period_adjust = false,
                    bool with_net_topology = false,
                    bool with_workload_mix = false);

}  // namespace rtdrm::check
