#include "common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace rtdrm {
namespace {

/// The process-wide execution configuration behind parallel::config().
/// Resolution order for the worker budget: explicit setThreads() override,
/// else RTDRM_THREADS, else hardware_concurrency(). The sharded-sim mode
/// likewise honors RTDRM_SIM_MODE until setSimMode() overrides it.
parallel::Config& mutableConfig() {
  static parallel::Config cfg = [] {
    parallel::Config c;
    c.cpu_count = std::max(1u, std::thread::hardware_concurrency());
    c.threads = c.cpu_count;
    if (const char* env = std::getenv("RTDRM_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v > 0) {
        c.threads = static_cast<unsigned>(std::min<long>(v, 256));
      }
    }
    if (const char* env = std::getenv("RTDRM_SIM_MODE")) {
      parallel::SimMode mode;
      if (parallel::parseSimMode(env, &mode)) {
        c.sim_mode = mode;
      }
    }
    if (const char* env = std::getenv("RTDRM_LOOKAHEAD")) {
      parallel::LookaheadPolicy policy;
      if (parallel::parseLookaheadPolicy(env, &policy)) {
        c.lookahead = policy;
      }
    }
    return c;
  }();
  return cfg;
}

// Set while a thread is executing loop bodies for some parallelFor call
// (pool workers always; the caller while it participates). A nested
// parallelFor on such a thread must not touch the pool: it would deadlock
// on the one-job-at-a-time submission lock. It runs serially instead.
thread_local bool tl_inside_parallel_region = false;

/// Process-wide persistent worker pool. One job runs at a time (submissions
/// serialize); the submitting thread works alongside the pool threads.
///
/// Jobs are published as epochs: run() stores the job under the mutex,
/// bumps the epoch and broadcasts. Every pool thread wakes exactly once per
/// epoch and acknowledges it — the first `active_limit_` to wake execute
/// chunks, the surplus ack immediately — so when the ack count drains to
/// zero no thread can still be touching the job state.
class WorkerPool {
 public:
  static WorkerPool& instance() {
    static WorkerPool pool;
    return pool;
  }

  /// Total workers (pool threads + caller) available by default. Reads the
  /// live parallel::config() snapshot so setThreads()/--threads overrides
  /// take effect for subsequent calls.
  unsigned defaultWorkers() const {
    return std::min(std::max(1u, mutableConfig().threads), kMaxWorkers);
  }

  void run(std::size_t n, const std::function<void(std::size_t)>& fn,
           unsigned max_workers, std::size_t grain) {
    const std::scoped_lock submit(submit_mutex_);
    {
      const std::scoped_lock lk(m_);
      // Grow lazily; threads spawned now inherit the current epoch, so the
      // coming bump is the first one they serve.
      const unsigned wanted =
          std::min<unsigned>(max_workers - 1, kMaxWorkers - 1);
      while (threads_.size() < wanted) {
        threads_.emplace_back([this, e = epoch_] { workerMain(e); });
      }
      fn_ = &fn;
      n_ = n;
      grain_ = grain;
      next_.store(0, std::memory_order_relaxed);
      failed_.store(false, std::memory_order_relaxed);
      error_ = nullptr;
      active_limit_ = max_workers - 1;  // caller is the remaining worker
      woken_ = 0;
      unacked_ = static_cast<unsigned>(threads_.size());
      ++epoch_;
    }
    cv_.notify_all();

    tl_inside_parallel_region = true;
    workChunks(n, fn, grain);
    tl_inside_parallel_region = false;

    std::unique_lock lk(m_);
    done_cv_.wait(lk, [this] { return unacked_ == 0; });
    fn_ = nullptr;
    if (error_) {
      std::exception_ptr err = error_;
      error_ = nullptr;
      lk.unlock();
      std::rethrow_exception(err);
    }
  }

 private:
  WorkerPool() = default;

  ~WorkerPool() {
    {
      const std::scoped_lock lk(m_);
      shutdown_ = true;
    }
    cv_.notify_all();
    for (auto& t : threads_) {
      t.join();
    }
  }

  void workerMain(std::uint64_t seen_epoch) {
    tl_inside_parallel_region = true;
    std::unique_lock lk(m_);
    for (;;) {
      cv_.wait(lk, [&] { return shutdown_ || epoch_ != seen_epoch; });
      if (shutdown_) {
        return;
      }
      seen_epoch = epoch_;
      if (woken_++ < active_limit_) {
        const std::size_t n = n_;
        const std::function<void(std::size_t)>* fn = fn_;
        const std::size_t grain = grain_;
        lk.unlock();
        workChunks(n, *fn, grain);
        lk.lock();
      }
      if (--unacked_ == 0) {
        done_cv_.notify_all();
      }
    }
  }

  void workChunks(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t grain) {
    while (!failed_.load(std::memory_order_relaxed)) {
      const std::size_t begin =
          next_.fetch_add(grain, std::memory_order_relaxed);
      if (begin >= n) {
        return;
      }
      const std::size_t end = std::min(begin + grain, n);
      try {
        for (std::size_t i = begin; i < end; ++i) {
          fn(i);
        }
      } catch (...) {
        const std::scoped_lock lk(m_);
        if (!error_) {
          error_ = std::current_exception();
        }
        failed_.store(true, std::memory_order_relaxed);
        return;
      }
    }
  }

  static constexpr unsigned kMaxWorkers = 256;

  std::mutex submit_mutex_;  // one job at a time
  std::mutex m_;
  std::condition_variable cv_;       // wakes workers on a new epoch
  std::condition_variable done_cv_;  // wakes the caller when all acked
  std::vector<std::thread> threads_;
  bool shutdown_ = false;

  // Current job (guarded by m_ except the atomics).
  std::uint64_t epoch_ = 0;
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t n_ = 0;
  std::size_t grain_ = 1;
  unsigned active_limit_ = 0;  // pool threads allowed to execute chunks
  unsigned woken_ = 0;         // pool threads that saw this epoch so far
  unsigned unacked_ = 0;       // pool threads yet to acknowledge this epoch
  std::atomic<std::size_t> next_{0};
  std::atomic<bool> failed_{false};
  std::exception_ptr error_;
};

void serialFor(std::size_t n, const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < n; ++i) {
    fn(i);
  }
}

}  // namespace

namespace parallel {

const Config& config() { return mutableConfig(); }

void setThreads(unsigned n) {
  if (n == 0) {
    // Re-resolve the environment/hardware default.
    parallel::Config& cfg = mutableConfig();
    unsigned resolved = cfg.cpu_count;
    if (const char* env = std::getenv("RTDRM_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v > 0) {
        resolved = static_cast<unsigned>(std::min<long>(v, 256));
      }
    }
    cfg.threads = std::max(1u, resolved);
    return;
  }
  mutableConfig().threads = n;
}

void setSimMode(SimMode mode) { mutableConfig().sim_mode = mode; }

bool parseSimMode(const std::string& s, SimMode* out) {
  if (s == "det" || s == "deterministic") {
    *out = SimMode::kDeterministic;
    return true;
  }
  if (s == "fast") {
    *out = SimMode::kFast;
    return true;
  }
  return false;
}

const char* simModeName(SimMode mode) {
  return mode == SimMode::kDeterministic ? "det" : "fast";
}

void setLookaheadPolicy(LookaheadPolicy policy) {
  mutableConfig().lookahead = policy;
}

bool parseLookaheadPolicy(const std::string& s, LookaheadPolicy* out) {
  if (s == "static") {
    *out = LookaheadPolicy::kStatic;
    return true;
  }
  if (s == "adaptive") {
    *out = LookaheadPolicy::kAdaptive;
    return true;
  }
  return false;
}

const char* lookaheadPolicyName(LookaheadPolicy policy) {
  return policy == LookaheadPolicy::kStatic ? "static" : "adaptive";
}

}  // namespace parallel

void parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn,
                 unsigned threads, std::size_t grain) {
  if (n == 0) {
    return;
  }
  if (grain == 0) {
    grain = 1;
  }
  WorkerPool& pool = WorkerPool::instance();
  const unsigned requested = threads != 0 ? threads : pool.defaultWorkers();
  const std::size_t chunks = (n + grain - 1) / grain;
  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(requested, chunks));
  if (workers <= 1 || tl_inside_parallel_region) {
    serialFor(n, fn);
    return;
  }
  pool.run(n, fn, workers, grain);
}

unsigned parallelWorkerCount() {
  return WorkerPool::instance().defaultWorkers();
}

}  // namespace rtdrm
