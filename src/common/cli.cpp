#include "common/cli.hpp"

#include <iostream>
#include <sstream>

#include "common/assert.hpp"

namespace rtdrm {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

ArgParser& ArgParser::addFlag(const std::string& name,
                              const std::string& help, bool* out) {
  RTDRM_ASSERT(out != nullptr && find(name) == nullptr);
  options_.push_back(
      Option{name, help, Kind::kFlag, out, *out ? "true" : "false"});
  return *this;
}

ArgParser& ArgParser::addInt(const std::string& name, const std::string& help,
                             std::int64_t* out) {
  RTDRM_ASSERT(out != nullptr && find(name) == nullptr);
  options_.push_back(
      Option{name, help, Kind::kInt, out, std::to_string(*out)});
  return *this;
}

ArgParser& ArgParser::addDouble(const std::string& name,
                                const std::string& help, double* out) {
  RTDRM_ASSERT(out != nullptr && find(name) == nullptr);
  options_.push_back(
      Option{name, help, Kind::kDouble, out, std::to_string(*out)});
  return *this;
}

ArgParser& ArgParser::addString(const std::string& name,
                                const std::string& help, std::string* out) {
  RTDRM_ASSERT(out != nullptr && find(name) == nullptr);
  options_.push_back(Option{name, help, Kind::kString, out, *out});
  return *this;
}

const ArgParser::Option* ArgParser::find(const std::string& name) const {
  for (const auto& o : options_) {
    if (o.name == name) {
      return &o;
    }
  }
  return nullptr;
}

bool ArgParser::store(const Option& opt, const std::string& value) {
  try {
    switch (opt.kind) {
      case Kind::kFlag: {
        if (value == "true" || value == "1") {
          *static_cast<bool*>(opt.out) = true;
        } else if (value == "false" || value == "0") {
          *static_cast<bool*>(opt.out) = false;
        } else {
          return false;
        }
        return true;
      }
      case Kind::kInt: {
        std::size_t used = 0;
        const std::int64_t v = std::stoll(value, &used);
        if (used != value.size()) {
          return false;
        }
        *static_cast<std::int64_t*>(opt.out) = v;
        return true;
      }
      case Kind::kDouble: {
        std::size_t used = 0;
        const double v = std::stod(value, &used);
        if (used != value.size()) {
          return false;
        }
        *static_cast<double*>(opt.out) = v;
        return true;
      }
      case Kind::kString:
        *static_cast<std::string*>(opt.out) = value;
        return true;
    }
  } catch (...) {
    return false;
  }
  return false;
}

bool ArgParser::parse(int argc, const char* const* argv, std::ostream& out,
                      std::ostream& err) {
  positional_.clear();
  help_requested_ = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      out << usage();
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    const auto eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    const Option* opt = find(name);
    if (opt == nullptr) {
      err << program_ << ": unknown option --" << name << "\n" << usage();
      return false;
    }
    if (!has_value) {
      if (opt->kind == Kind::kFlag) {
        value = "true";  // bare flag
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        err << program_ << ": option --" << name << " needs a value\n";
        return false;
      }
    }
    if (!store(*opt, value)) {
      err << program_ << ": bad value '" << value << "' for --" << name
          << "\n";
      return false;
    }
  }
  return true;
}

bool ArgParser::parse(int argc, const char* const* argv) {
  return parse(argc, argv, std::cout, std::cerr);
}

std::string ArgParser::usage() const {
  std::ostringstream os;
  os << "usage: " << program_ << " [options]\n";
  if (!description_.empty()) {
    os << description_ << "\n";
  }
  if (!options_.empty()) {
    os << "options:\n";
  }
  for (const auto& o : options_) {
    os << "  --" << o.name;
    if (o.kind != Kind::kFlag) {
      os << " <value>";
    }
    os << "  " << o.help << " (default: " << o.default_repr << ")\n";
  }
  return os.str();
}

}  // namespace rtdrm
