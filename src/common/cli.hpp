// Minimal command-line option parser for the examples and tools.
//
// Supports `--name value`, `--name=value`, boolean flags (`--verbose`),
// and positional arguments. `--help` prints generated usage and makes
// parse() return false so the caller can exit cleanly.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace rtdrm {

class ArgParser {
 public:
  explicit ArgParser(std::string program, std::string description = "");

  // Registration: `out` must outlive parse(); its current value is the
  // default shown in usage.
  ArgParser& addFlag(const std::string& name, const std::string& help,
                     bool* out);
  ArgParser& addInt(const std::string& name, const std::string& help,
                    std::int64_t* out);
  ArgParser& addDouble(const std::string& name, const std::string& help,
                       double* out);
  ArgParser& addString(const std::string& name, const std::string& help,
                       std::string* out);

  /// Parses argv. Returns false on --help (usage printed to `out`) or on
  /// error (message printed to `err`); callers should exit in both cases,
  /// distinguishing via helpRequested().
  bool parse(int argc, const char* const* argv, std::ostream& out,
             std::ostream& err);
  /// Convenience overload writing to std::cout/std::cerr.
  bool parse(int argc, const char* const* argv);

  bool helpRequested() const { return help_requested_; }
  const std::vector<std::string>& positional() const { return positional_; }
  std::string usage() const;

 private:
  enum class Kind { kFlag, kInt, kDouble, kString };
  struct Option {
    std::string name;  // without leading dashes
    std::string help;
    Kind kind;
    void* out;
    std::string default_repr;
  };

  const Option* find(const std::string& name) const;
  static bool store(const Option& opt, const std::string& value);

  std::string program_;
  std::string description_;
  std::vector<Option> options_;
  std::vector<std::string> positional_;
  bool help_requested_ = false;
};

}  // namespace rtdrm
