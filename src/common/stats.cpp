#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace rtdrm {

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) {
    return;
  }
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void TimeWeightedMean::update(double t, double value) {
  if (started_) {
    RTDRM_ASSERT_MSG(t >= last_t_, "time must be non-decreasing");
    const double dt = t - last_t_;
    weighted_sum_ += last_value_ * dt;
    total_time_ += dt;
  }
  started_ = true;
  last_t_ = t;
  last_value_ = value;
}

double TimeWeightedMean::mean() const {
  if (!started_) {
    return 0.0;
  }
  // A single update spans no time; report the one value observed.
  return total_time_ > 0.0 ? weighted_sum_ / total_time_ : last_value_;
}

void TimeWeightedMean::reset() { *this = TimeWeightedMean{}; }

double percentile(std::vector<double> samples, double p) {
  RTDRM_ASSERT(p >= 0.0 && p <= 100.0);
  RTDRM_ASSERT_MSG(!samples.empty(),
                   "percentile of an empty sample set is undefined");
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) {
    return samples.front();
  }
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + frac * (samples[hi] - samples[lo]);
}

}  // namespace rtdrm
