// Streaming statistics accumulators.
//
// Metrics in the evaluation (missed-deadline ratio, mean utilizations,
// mean replica counts — Figs. 9, 11, 12) are all streaming means over a
// simulation episode; Welford's algorithm keeps them numerically stable
// without retaining samples.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace rtdrm {

/// Welford running mean / variance / min / max.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double sum() const { return n_ > 0 ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Counter of binary outcomes; `ratio()` is e.g. the missed-deadline ratio.
class HitRatio {
 public:
  void add(bool hit) {
    ++total_;
    if (hit) {
      ++hits_;
    }
  }
  std::size_t hits() const { return hits_; }
  std::size_t total() const { return total_; }
  double ratio() const {
    return total_ > 0 ? static_cast<double>(hits_) / static_cast<double>(total_)
                      : 0.0;
  }
  void reset() { hits_ = total_ = 0; }

 private:
  std::size_t hits_ = 0;
  std::size_t total_ = 0;
};

/// Time-weighted average of a piecewise-constant signal (e.g. replica count
/// or queue length over simulated time).
class TimeWeightedMean {
 public:
  /// Record that the signal held `value` from the previous update until `t`.
  void update(double t, double value);
  /// Time-weighted mean over the updates seen; 0.0 before the first update.
  double mean() const;
  void reset();

 private:
  bool started_ = false;
  double last_t_ = 0.0;
  double last_value_ = 0.0;
  double weighted_sum_ = 0.0;
  double total_time_ = 0.0;
};

/// Percentile from a sample vector (linear interpolation, p in [0,100]).
/// The input is copied and sorted; intended for post-run reporting.
/// Asserts on an empty input — the percentile of nothing is undefined, and
/// a silent 0.0 has masked real bugs in callers.
double percentile(std::vector<double> samples, double p);

}  // namespace rtdrm
