// Minimal leveled logger.
//
// The simulator and resource manager log allocation decisions and deadline
// misses at Debug/Trace level; benches run with Warn so output stays clean.
#pragma once

#include <sstream>
#include <string>

namespace rtdrm {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log threshold; messages below it are discarded.
void setLogLevel(LogLevel level);
LogLevel logLevel();

namespace detail {
void logEmit(LogLevel level, const std::string& msg);
}

/// Stream-style log statement: RTDRM_LOG(kInfo) << "x=" << x;
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { detail::logEmit(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace rtdrm

#define RTDRM_LOG(level)                                  \
  if (::rtdrm::LogLevel::level < ::rtdrm::logLevel()) {   \
  } else                                                  \
    ::rtdrm::LogLine(::rtdrm::LogLevel::level)
