#include "common/log.hpp"

#include <atomic>
#include <cstdio>

namespace rtdrm {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* levelName(LogLevel l) {
  switch (l) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void setLogLevel(LogLevel level) { g_level.store(level); }
LogLevel logLevel() { return g_level.load(); }

namespace detail {
void logEmit(LogLevel level, const std::string& msg) {
  std::fprintf(stderr, "[rtdrm %-5s] %s\n", levelName(level), msg.c_str());
}
}  // namespace detail

}  // namespace rtdrm
