// Fixed-bucket histogram for latency distributions.
//
// The evaluation figures report means, but tails decide deadline misses;
// EpisodeMetrics keeps an end-to-end latency histogram so examples and
// benches can print distributions without retaining every sample.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace rtdrm {

class Histogram {
 public:
  /// Uniform buckets over [lo, hi); samples outside are counted in
  /// underflow/overflow. Requires hi > lo and bucket_count >= 1.
  Histogram(double lo, double hi, std::size_t bucket_count);

  void add(double x);
  void merge(const Histogram& other);  ///< shapes must match

  std::uint64_t total() const { return total_; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::size_t bucketCount() const { return counts_.size(); }
  std::uint64_t bucketCount(std::size_t i) const { return counts_[i]; }
  double bucketLow(std::size_t i) const;
  double bucketHigh(std::size_t i) const { return bucketLow(i + 1); }

  /// Approximate quantile (q in [0,1]) by linear interpolation within the
  /// containing bucket; under/overflow samples clamp to the range ends.
  double quantile(double q) const;

  /// Multi-line ASCII rendering; `width` is the bar width of the fullest
  /// bucket. Empty leading/trailing buckets are elided.
  std::string render(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace rtdrm
