// Minimal data-parallel helper for embarrassingly parallel sweeps.
//
// Experiment sweeps (Figs. 9-13) run dozens of fully independent simulation
// episodes; parallelFor fans them out across hardware threads. Indices are
// claimed in chunks of `grain` from an atomic counter, so uneven episode
// costs balance automatically. Exceptions in workers are captured and
// rethrown on the caller thread (first one wins).
//
// Workers come from a lazily-constructed process-wide pool that persists
// across calls, so back-to-back sweeps (every Figs. 9-13 binary) stop
// paying thread create/join per call. The caller thread participates in
// every call. Pool size defaults to std::thread::hardware_concurrency()
// and can be overridden with the RTDRM_THREADS environment variable (read
// once, at first use); the pool grows on demand when a call asks for more
// workers via the `threads` argument. Nested parallelFor calls from inside
// a worker run serially on that worker — fan-out happens at one level only.
#pragma once

#include <cstddef>
#include <functional>
#include <string>

namespace rtdrm {

namespace parallel {

/// How a sharded simulation advances its barrier windows (see
/// sim::ShardedEngine, docs/parallel_engine.md).
enum class SimMode {
  /// Shards execute each window in fixed order with a canonical
  /// cross-shard merge; results are byte-identical for any thread count.
  /// Cross-shard posts inside the lookahead window are rejected.
  kDeterministic,
  /// Shards execute windows concurrently on the worker pool; in-window
  /// cross-shard posts are clamped to the window barrier (bounded skew,
  /// Graphite-style lax sync) instead of rejected.
  kFast,
};

/// How a sharded simulation sizes its barrier windows (see
/// sim::ShardedEngine and docs/architecture.md, "Parallel episode engine").
enum class LookaheadPolicy {
  /// Every shard runs the same global window [E, E + lookahead): the PR-6
  /// conservative baseline. Kept as the regression reference.
  kStatic,
  /// Per-shard horizons: shard j runs to min over other shards i of
  /// (next_i + lookahead), so quiescent co-shards let a busy shard widen
  /// its window and idle shards skip windows entirely. Provably
  /// conservative — digests are byte-identical to kStatic.
  kAdaptive,
};

/// Process-wide execution configuration, resolved once from the
/// environment (RTDRM_THREADS, RTDRM_SIM_MODE) at first use and
/// overridable by command-line front ends (--threads / --sim-mode).
struct Config {
  /// Worker budget for parallelFor and sharded-window execution
  /// (>= 1; the calling thread counts as one worker).
  unsigned threads = 1;
  /// Default mode for sharded simulation engines.
  SimMode sim_mode = SimMode::kDeterministic;
  /// Default barrier-window sizing policy for sharded engines.
  LookaheadPolicy lookahead = LookaheadPolicy::kAdaptive;
  /// std::thread::hardware_concurrency() at resolution time (>= 1);
  /// recorded into bench config blocks so results are interpretable.
  unsigned cpu_count = 1;
};

/// The resolved process-wide configuration. First call reads the
/// environment; later calls return the (possibly overridden) snapshot.
const Config& config();

/// Overrides the worker budget (0 = re-resolve from env/hardware). Takes
/// effect for subsequent parallelFor calls; the persistent pool grows on
/// demand and never shrinks.
void setThreads(unsigned n);
/// Overrides the default sharded-simulation mode.
void setSimMode(SimMode mode);
/// Overrides the default barrier-window sizing policy.
void setLookaheadPolicy(LookaheadPolicy policy);

/// Parses "det"/"deterministic" or "fast". Returns false on anything else.
bool parseSimMode(const std::string& s, SimMode* out);
const char* simModeName(SimMode mode);

/// Parses "static" or "adaptive". Returns false on anything else.
bool parseLookaheadPolicy(const std::string& s, LookaheadPolicy* out);
const char* lookaheadPolicyName(LookaheadPolicy policy);

}  // namespace parallel

/// Invokes fn(i) for i in [0, n) using up to `threads` workers (0 = the
/// parallel::config() budget, which honors RTDRM_THREADS). fn must be safe
/// to call concurrently for distinct i. `grain` is the number of
/// consecutive indices a worker claims at a time; 1 (the default) gives
/// the best load balance for coarse work items like simulation episodes,
/// larger grains amortize the claim for very cheap bodies.
void parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn,
                 unsigned threads = 0, std::size_t grain = 1);

/// Number of workers a parallelFor(n, fn) call would use at most (the
/// resolved pool size, including the calling thread). Exposed for tests
/// and for sizing per-worker scratch storage.
unsigned parallelWorkerCount();

}  // namespace rtdrm
