// Minimal data-parallel helper for embarrassingly parallel sweeps.
//
// Experiment sweeps (Figs. 9-13) run dozens of fully independent simulation
// episodes; parallelFor fans them out across hardware threads. Indices are
// claimed in chunks of `grain` from an atomic counter, so uneven episode
// costs balance automatically. Exceptions in workers are captured and
// rethrown on the caller thread (first one wins).
//
// Workers come from a lazily-constructed process-wide pool that persists
// across calls, so back-to-back sweeps (every Figs. 9-13 binary) stop
// paying thread create/join per call. The caller thread participates in
// every call. Pool size defaults to std::thread::hardware_concurrency()
// and can be overridden with the RTDRM_THREADS environment variable (read
// once, at first use); the pool grows on demand when a call asks for more
// workers via the `threads` argument. Nested parallelFor calls from inside
// a worker run serially on that worker — fan-out happens at one level only.
#pragma once

#include <cstddef>
#include <functional>

namespace rtdrm {

/// Invokes fn(i) for i in [0, n) using up to `threads` workers (0 = one per
/// hardware thread, or RTDRM_THREADS when set). fn must be safe to call
/// concurrently for distinct i. `grain` is the number of consecutive
/// indices a worker claims at a time; 1 (the default) gives the best load
/// balance for coarse work items like simulation episodes, larger grains
/// amortize the claim for very cheap bodies.
void parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn,
                 unsigned threads = 0, std::size_t grain = 1);

/// Number of workers a parallelFor(n, fn) call would use at most (the
/// resolved pool size, including the calling thread). Exposed for tests
/// and for sizing per-worker scratch storage.
unsigned parallelWorkerCount();

}  // namespace rtdrm
