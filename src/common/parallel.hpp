// Minimal data-parallel helper for embarrassingly parallel sweeps.
//
// Experiment sweeps (Figs. 9-13) run dozens of fully independent simulation
// episodes; parallelFor fans them out across hardware threads. Each index
// is claimed from an atomic counter, so uneven episode costs balance
// automatically. Exceptions in workers are captured and rethrown on the
// caller thread (first one wins).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rtdrm {

/// Invokes fn(i) for i in [0, n) using up to `threads` workers (0 = one per
/// hardware thread). fn must be safe to call concurrently for distinct i.
inline void parallelFor(std::size_t n,
                        const std::function<void(std::size_t)>& fn,
                        unsigned threads = 0) {
  if (n == 0) {
    return;
  }
  unsigned hw = threads != 0 ? threads : std::thread::hardware_concurrency();
  if (hw == 0) {
    hw = 1;
  }
  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(hw, n));
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&] {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) {
        return;
      }
      try {
        fn(i);
      } catch (...) {
        const std::scoped_lock lock(error_mutex);
        if (!first_error) {
          first_error = std::current_exception();
        }
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back(worker);
  }
  for (auto& t : pool) {
    t.join();
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

}  // namespace rtdrm
