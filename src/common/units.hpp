// Strong unit types used throughout rtdrm.
//
// The paper mixes milliseconds, track counts, "hundreds of tracks", bytes
// and utilization fractions; encoding each as its own vocabulary type makes
// the regression equations (eqs. 1-6 of the paper) read like the paper and
// prevents the classic ms-vs-s and percent-vs-fraction unit bugs.
//
// Conventions (documented in DESIGN.md §2):
//   * SimTime / SimDuration carry milliseconds in a double.
//   * DataSize counts individual tracks (sensor reports); the regression
//     equations consume DataSize::hundreds().
//   * Utilization is a fraction in [0, 1].
#pragma once

#include <algorithm>
#include <compare>
#include <cstdint>

#include "common/assert.hpp"

namespace rtdrm {

/// A span of simulated time, in milliseconds.
class SimDuration {
 public:
  constexpr SimDuration() = default;
  static constexpr SimDuration millis(double ms) { return SimDuration{ms}; }
  static constexpr SimDuration seconds(double s) {
    return SimDuration{s * 1000.0};
  }
  static constexpr SimDuration micros(double us) {
    return SimDuration{us / 1000.0};
  }
  static constexpr SimDuration zero() { return SimDuration{0.0}; }

  constexpr double ms() const { return ms_; }
  constexpr double sec() const { return ms_ / 1000.0; }

  constexpr SimDuration operator+(SimDuration o) const {
    return SimDuration{ms_ + o.ms_};
  }
  constexpr SimDuration operator-(SimDuration o) const {
    return SimDuration{ms_ - o.ms_};
  }
  constexpr SimDuration operator*(double k) const {
    return SimDuration{ms_ * k};
  }
  constexpr SimDuration operator/(double k) const {
    return SimDuration{ms_ / k};
  }
  constexpr double operator/(SimDuration o) const { return ms_ / o.ms_; }
  SimDuration& operator+=(SimDuration o) {
    ms_ += o.ms_;
    return *this;
  }
  SimDuration& operator-=(SimDuration o) {
    ms_ -= o.ms_;
    return *this;
  }
  constexpr auto operator<=>(const SimDuration&) const = default;

 private:
  constexpr explicit SimDuration(double ms) : ms_(ms) {}
  double ms_ = 0.0;
};

constexpr SimDuration operator*(double k, SimDuration d) { return d * k; }

/// An absolute point on the simulation clock, in milliseconds since t=0.
class SimTime {
 public:
  constexpr SimTime() = default;
  static constexpr SimTime millis(double ms) { return SimTime{ms}; }
  static constexpr SimTime seconds(double s) { return SimTime{s * 1000.0}; }
  static constexpr SimTime zero() { return SimTime{0.0}; }

  constexpr double ms() const { return ms_; }
  constexpr double sec() const { return ms_ / 1000.0; }

  constexpr SimTime operator+(SimDuration d) const {
    return SimTime{ms_ + d.ms()};
  }
  constexpr SimTime operator-(SimDuration d) const {
    return SimTime{ms_ - d.ms()};
  }
  constexpr SimDuration operator-(SimTime o) const {
    return SimDuration::millis(ms_ - o.ms_);
  }
  SimTime& operator+=(SimDuration d) {
    ms_ += d.ms();
    return *this;
  }
  constexpr auto operator<=>(const SimTime&) const = default;

 private:
  constexpr explicit SimTime(double ms) : ms_(ms) {}
  double ms_ = 0.0;
};

/// Number of data items ("tracks", i.e. sensor reports) in a data stream.
///
/// The paper's regression equation (eq. 3) measures data size in *hundreds*
/// of tracks; `hundreds()` performs that conversion exactly once, here.
class DataSize {
 public:
  constexpr DataSize() = default;
  static constexpr DataSize tracks(double n) { return DataSize{n}; }
  static constexpr DataSize hundredsOf(double h) { return DataSize{h * 100.0}; }
  static constexpr DataSize zero() { return DataSize{0.0}; }

  constexpr double count() const { return n_; }
  /// Data size in the unit used by regression equation (3): hundreds of tracks.
  constexpr double hundreds() const { return n_ / 100.0; }

  constexpr DataSize operator+(DataSize o) const { return DataSize{n_ + o.n_}; }
  constexpr DataSize operator-(DataSize o) const { return DataSize{n_ - o.n_}; }
  constexpr DataSize operator*(double k) const { return DataSize{n_ * k}; }
  constexpr DataSize operator/(double k) const {
    RTDRM_ASSERT(k != 0.0);
    return DataSize{n_ / k};
  }
  DataSize& operator+=(DataSize o) {
    n_ += o.n_;
    return *this;
  }
  constexpr auto operator<=>(const DataSize&) const = default;

 private:
  constexpr explicit DataSize(double n) : n_(n) {}
  double n_ = 0.0;
};

/// Message / frame payload size in bytes.
class Bytes {
 public:
  constexpr Bytes() = default;
  static constexpr Bytes of(double b) { return Bytes{b}; }
  static constexpr Bytes kilo(double kb) { return Bytes{kb * 1000.0}; }
  static constexpr Bytes zero() { return Bytes{0.0}; }

  constexpr double count() const { return b_; }
  constexpr double bits() const { return b_ * 8.0; }

  constexpr Bytes operator+(Bytes o) const { return Bytes{b_ + o.b_}; }
  constexpr Bytes operator-(Bytes o) const { return Bytes{b_ - o.b_}; }
  constexpr Bytes operator*(double k) const { return Bytes{b_ * k}; }
  constexpr Bytes operator/(double k) const { return Bytes{b_ / k}; }
  constexpr auto operator<=>(const Bytes&) const = default;

 private:
  constexpr explicit Bytes(double b) : b_(b) {}
  double b_ = 0.0;
};

/// Link speed. 100 Mbps Ethernet in the paper's baseline (Table 1).
class BitRate {
 public:
  constexpr BitRate() = default;
  static constexpr BitRate bps(double v) { return BitRate{v}; }
  static constexpr BitRate mbps(double v) { return BitRate{v * 1e6}; }

  constexpr double bitsPerSecond() const { return bps_; }

  /// Time to serialize `b` onto the wire: eq. (6), Dtrans = d / ls.
  constexpr SimDuration transmissionTime(Bytes b) const {
    return SimDuration::seconds(b.bits() / bps_);
  }
  constexpr auto operator<=>(const BitRate&) const = default;

 private:
  constexpr explicit BitRate(double bps) : bps_(bps) {}
  double bps_ = 1.0;
};

/// CPU or network utilization as a fraction in [0, 1].
///
/// The paper prints utilization "in percentage" but Table 2's coefficients
/// are only dimensionally consistent with a [0, 1] fraction (see DESIGN.md);
/// this type stores the fraction and offers percent() for display.
class Utilization {
 public:
  constexpr Utilization() = default;
  static constexpr Utilization fraction(double f) {
    return Utilization{std::clamp(f, 0.0, 1.0)};
  }
  static constexpr Utilization percent(double p) {
    return Utilization{std::clamp(p / 100.0, 0.0, 1.0)};
  }
  static constexpr Utilization zero() { return Utilization{0.0}; }

  constexpr double value() const { return f_; }
  constexpr double asPercent() const { return f_ * 100.0; }

  constexpr auto operator<=>(const Utilization&) const = default;

 private:
  constexpr explicit Utilization(double f) : f_(f) {}
  double f_ = 0.0;
};

/// Identifier for a processor node. Index into the cluster's processor array.
struct ProcessorId {
  std::uint32_t value = 0;
  constexpr auto operator<=>(const ProcessorId&) const = default;
};

/// "No specific node" sentinel: compares above every real processor id, so
/// per-node lookups keyed by it (e.g. the exec-model override table in
/// PredictiveModels::execLatencyOn) always miss and fall back to the
/// shared stage model. Never index a cluster with it.
inline constexpr ProcessorId kNoNode{0xffffffffu};

}  // namespace rtdrm
