#include "common/histogram.hpp"

#include <algorithm>
#include <cstdio>

#include "common/assert.hpp"

namespace rtdrm {

Histogram::Histogram(double lo, double hi, std::size_t bucket_count)
    : lo_(lo), hi_(hi), counts_(bucket_count, 0) {
  RTDRM_ASSERT(hi > lo);
  RTDRM_ASSERT(bucket_count >= 1);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const auto i = static_cast<std::size_t>(
      (x - lo_) / (hi_ - lo_) * static_cast<double>(counts_.size()));
  counts_[std::min(i, counts_.size() - 1)] += 1;
}

void Histogram::merge(const Histogram& other) {
  RTDRM_ASSERT_MSG(lo_ == other.lo_ && hi_ == other.hi_ &&
                       counts_.size() == other.counts_.size(),
                   "histogram shapes must match");
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
}

double Histogram::bucketLow(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::quantile(double q) const {
  RTDRM_ASSERT(q >= 0.0 && q <= 1.0);
  if (total_ == 0) {
    return lo_;
  }
  const double target = q * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  // Only a populated underflow bin may claim the quantile at lo_; with
  // underflow_ == 0 a q of 0 must fall through to the first populated
  // bucket below (its `counts_[i] > 0` guard skips the empty prefix).
  if (underflow_ > 0 && target <= cum) {
    return lo_;
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (target <= next && counts_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      return bucketLow(i) + frac * (bucketHigh(i) - bucketLow(i));
    }
    cum = next;
  }
  return hi_;
}

std::string Histogram::render(std::size_t width) const {
  std::size_t first = counts_.size();
  std::size_t last = 0;
  std::uint64_t peak = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] > 0) {
      first = std::min(first, i);
      last = std::max(last, i);
      peak = std::max(peak, counts_[i]);
    }
  }
  std::string out;
  if (peak == 0) {
    return "(empty histogram)\n";
  }
  char line[160];
  for (std::size_t i = first; i <= last; ++i) {
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(width));
    std::snprintf(line, sizeof line, "[%10.2f, %10.2f) %8llu |", bucketLow(i),
                  bucketHigh(i),
                  static_cast<unsigned long long>(counts_[i]));
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  if (underflow_ > 0 || overflow_ > 0) {
    std::snprintf(line, sizeof line, "(underflow %llu, overflow %llu)\n",
                  static_cast<unsigned long long>(underflow_),
                  static_cast<unsigned long long>(overflow_));
    out += line;
  }
  return out;
}

}  // namespace rtdrm
