#include "common/rng.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace rtdrm {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) {
    s = sm.next();
  }
}

std::uint64_t Xoshiro256::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Xoshiro256::uniform01() {
  // 53 random mantissa bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Xoshiro256::uniform(double lo, double hi) {
  RTDRM_ASSERT(lo <= hi);
  return lo + (hi - lo) * uniform01();
}

std::int64_t Xoshiro256::uniformInt(std::int64_t lo, std::int64_t hi) {
  RTDRM_ASSERT(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next());
  }
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = (~0ULL) - (~0ULL) % span;
  std::uint64_t r = next();
  while (r >= limit) {
    r = next();
  }
  return lo + static_cast<std::int64_t>(r % span);
}

double Xoshiro256::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Marsaglia polar method.
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * mul;
  has_cached_normal_ = true;
  return u * mul;
}

double Xoshiro256::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Xoshiro256::exponentialMean(double mean) {
  RTDRM_ASSERT(mean > 0.0);
  double u = uniform01();
  while (u == 0.0) {
    u = uniform01();
  }
  return -mean * std::log(u);
}

double Xoshiro256::lognormalUnitMean(double sigma) {
  if (sigma <= 0.0) {
    return 1.0;
  }
  // X = exp(N(mu, sigma)) with mu = -sigma^2/2 gives E[X] = 1.
  return std::exp(normal(-0.5 * sigma * sigma, sigma));
}

Xoshiro256 RngStreams::get(std::string_view name, std::uint64_t index) const {
  // Combine master seed, name hash, and index through SplitMix64 so that
  // nearby keys do not produce correlated states.
  SplitMix64 sm(master_ ^ fnv1a64(name));
  const std::uint64_t a = sm.next();
  SplitMix64 sm2(a ^ (index * 0x9e3779b97f4a7c15ULL + 0x632be59bd9b4e019ULL));
  return Xoshiro256(sm2.next());
}

}  // namespace rtdrm
