// Aligned console tables and CSV emission.
//
// Every bench binary prints the paper's rows/series both as a human-readable
// aligned table and, optionally, as CSV for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace rtdrm {

/// A cell is a string, an integer, or a double (formatted with a per-table
/// precision).
using TableCell = std::variant<std::string, long long, double>;

class Table {
 public:
  explicit Table(std::vector<std::string> headers, int double_precision = 3);

  Table& addRow(std::vector<TableCell> row);
  std::size_t rowCount() const { return rows_.size(); }

  /// Renders as an aligned, boxed text table.
  void print(std::ostream& os) const;
  /// Renders as CSV (headers + rows).
  void printCsv(std::ostream& os) const;
  /// Writes CSV to `path`; returns false (and logs) on I/O failure.
  bool writeCsv(const std::string& path) const;

 private:
  std::string format(const TableCell& c) const;

  std::vector<std::string> headers_;
  std::vector<std::vector<TableCell>> rows_;
  int precision_;
};

/// Prints a section banner like "== Figure 9(a): Missed deadline ratio ==".
void printBanner(std::ostream& os, const std::string& title);

}  // namespace rtdrm
