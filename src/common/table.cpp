#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/assert.hpp"

namespace rtdrm {

Table::Table(std::vector<std::string> headers, int double_precision)
    : headers_(std::move(headers)), precision_(double_precision) {
  RTDRM_ASSERT(!headers_.empty());
}

Table& Table::addRow(std::vector<TableCell> row) {
  RTDRM_ASSERT_MSG(row.size() == headers_.size(),
                   "row width must match header width");
  rows_.push_back(std::move(row));
  return *this;
}

std::string Table::format(const TableCell& c) const {
  if (const auto* s = std::get_if<std::string>(&c)) {
    return *s;
  }
  if (const auto* i = std::get_if<long long>(&c)) {
    return std::to_string(*i);
  }
  const double d = std::get<double>(c);
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision_, d);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  std::vector<std::vector<std::string>> cells;
  cells.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (std::size_t i = 0; i < row.size(); ++i) {
      r.push_back(format(row[i]));
      widths[i] = std::max(widths[i], r.back().size());
    }
    cells.push_back(std::move(r));
  }
  auto hline = [&] {
    os << '+';
    for (auto w : widths) {
      os << std::string(w + 2, '-') << '+';
    }
    os << '\n';
  };
  auto printRow = [&](const std::vector<std::string>& r) {
    os << '|';
    for (std::size_t i = 0; i < r.size(); ++i) {
      os << ' ' << r[i] << std::string(widths[i] - r[i].size() + 1, ' ') << '|';
    }
    os << '\n';
  };
  hline();
  printRow(headers_);
  hline();
  for (const auto& r : cells) {
    printRow(r);
  }
  hline();
}

namespace {
void csvEscape(std::ostream& os, const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) {
    os << s;
    return;
  }
  os << '"';
  for (char c : s) {
    if (c == '"') {
      os << '"';
    }
    os << c;
  }
  os << '"';
}
}  // namespace

void Table::printCsv(std::ostream& os) const {
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    if (i > 0) {
      os << ',';
    }
    csvEscape(os, headers_[i]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) {
        os << ',';
      }
      csvEscape(os, format(row[i]));
    }
    os << '\n';
  }
}

bool Table::writeCsv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) {
    std::cerr << "rtdrm: failed to open " << path << " for writing\n";
    return false;
  }
  printCsv(f);
  return static_cast<bool>(f);
}

void printBanner(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

}  // namespace rtdrm
