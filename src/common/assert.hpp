// Lightweight always-on assertion macros.
//
// Simulation code is full of invariants whose violation indicates a logic
// error, not a recoverable condition; we want those checked in release
// builds too (the simulator is the measurement instrument — a silently
// corrupted run is worse than an aborted one).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace rtdrm::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "rtdrm assertion failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace rtdrm::detail

#define RTDRM_ASSERT(expr)                                              \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::rtdrm::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
    }                                                                   \
  } while (false)

#define RTDRM_ASSERT_MSG(expr, msg)                                  \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::rtdrm::detail::assert_fail(#expr, __FILE__, __LINE__, msg);  \
    }                                                                \
  } while (false)
