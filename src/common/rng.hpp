// Deterministic random number generation.
//
// Every stochastic component of the simulator (background load, execution
// noise, clock drift, workload jitter) draws from its own named stream so
// that adding a new consumer never perturbs the draws seen by existing
// ones — a prerequisite for reproducible experiments and for paired
// comparisons between the predictive and non-predictive allocators (both
// see identical workloads and noise for the same master seed).
//
// Engine: xoshiro256** (Blackman & Vigna), seeded through SplitMix64.
#pragma once

#include <cstdint>
#include <string_view>

namespace rtdrm {

/// SplitMix64 — used for seeding and for hashing stream names.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — fast, high-quality 64-bit generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed);

  std::uint64_t next();

  // UniformRandomBitGenerator interface (usable with <random> distributions).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  /// Uniform double in [0, 1).
  double uniform01();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);
  /// Standard normal via Marsaglia polar method.
  double normal();
  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);
  /// Exponential with the given mean (not rate).
  double exponentialMean(double mean);
  /// Lognormal multiplicative noise factor with E[X] = 1 and the given
  /// coefficient-of-variation-like sigma of the underlying normal.
  double lognormalUnitMean(double sigma);

 private:
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// Derives independent, reproducible child streams from a master seed.
///
/// Streams are keyed by (name, index); e.g. `streams.get("bg-load", nodeId)`.
class RngStreams {
 public:
  explicit RngStreams(std::uint64_t master_seed) : master_(master_seed) {}

  std::uint64_t masterSeed() const { return master_; }

  /// A generator for the stream keyed by `name` and `index`. Identical keys
  /// always yield identical streams for the same master seed.
  Xoshiro256 get(std::string_view name, std::uint64_t index = 0) const;

 private:
  std::uint64_t master_;
};

/// FNV-1a 64-bit hash of a string (used for stream-name derivation).
constexpr std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace rtdrm
