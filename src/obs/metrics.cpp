#include "obs/metrics.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/assert.hpp"

namespace rtdrm::obs {

namespace {

/// Shortest round-trippable decimal for a double (JSON has no hex floats).
std::string formatDouble(double v) {
  if (!std::isfinite(v)) {
    return "0";  // JSON has no inf/nan; snapshots never legitimately do
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  double back = 0.0;
  std::sscanf(buf, "%lf", &back);
  if (back == v) {
    // Try shorter representations that still round-trip.
    for (int prec = 1; prec < 17; ++prec) {
      char shorter[32];
      std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
      std::sscanf(shorter, "%lf", &back);
      if (back == v) {
        return shorter;
      }
    }
  }
  return buf;
}

}  // namespace

void Histogram::observe(double v) {
  if (count_ == 0 || v < min_) {
    min_ = v;
  }
  if (count_ == 0 || v > max_) {
    max_ = v;
  }
  ++count_;
  sum_ += v;
  std::size_t b = 0;
  if (v >= 1.0) {
    const int e = std::ilogb(v);
    b = static_cast<std::size_t>(e) + 1;
    if (b >= kBuckets) {
      b = kBuckets - 1;
    }
  }
  ++buckets_[b];
}

MetricsRegistry::Instrument& MetricsRegistry::get(const std::string& name,
                                                  Kind kind) {
  auto [it, inserted] = instruments_.try_emplace(name);
  Instrument& inst = it->second;
  if (inserted) {
    inst.kind = kind;
    switch (kind) {
      case Kind::kCounter:
        inst.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        inst.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        inst.histogram = std::make_unique<Histogram>();
        break;
    }
  }
  RTDRM_ASSERT_MSG(inst.kind == kind,
                   "metric name reused with a different instrument kind");
  return inst;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  return *get(name, Kind::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return *get(name, Kind::kGauge).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  return *get(name, Kind::kHistogram).histogram;
}

const Counter* MetricsRegistry::findCounter(const std::string& name) const {
  const auto it = instruments_.find(name);
  return it != instruments_.end() && it->second.kind == Kind::kCounter
             ? it->second.counter.get()
             : nullptr;
}

const Gauge* MetricsRegistry::findGauge(const std::string& name) const {
  const auto it = instruments_.find(name);
  return it != instruments_.end() && it->second.kind == Kind::kGauge
             ? it->second.gauge.get()
             : nullptr;
}

const Histogram* MetricsRegistry::findHistogram(
    const std::string& name) const {
  const auto it = instruments_.find(name);
  return it != instruments_.end() && it->second.kind == Kind::kHistogram
             ? it->second.histogram.get()
             : nullptr;
}

void MetricsRegistry::forEachCounter(
    const std::function<void(const std::string&, const Counter&)>& fn) const {
  for (const auto& [name, inst] : instruments_) {
    if (inst.kind == Kind::kCounter) {
      fn(name, *inst.counter);
    }
  }
}

void MetricsRegistry::forEachGauge(
    const std::function<void(const std::string&, const Gauge&)>& fn) const {
  for (const auto& [name, inst] : instruments_) {
    if (inst.kind == Kind::kGauge) {
      fn(name, *inst.gauge);
    }
  }
}

void MetricsRegistry::forEachHistogram(
    const std::function<void(const std::string&, const Histogram&)>& fn)
    const {
  for (const auto& [name, inst] : instruments_) {
    if (inst.kind == Kind::kHistogram) {
      fn(name, *inst.histogram);
    }
  }
}

std::string MetricsRegistry::toJson() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  forEachCounter([&](const std::string& name, const Counter& c) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": " + std::to_string(c.value());
  });
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  forEachGauge([&](const std::string& name, const Gauge& g) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": " + formatDouble(g.value());
  });
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  forEachHistogram([&](const std::string& name, const Histogram& h) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": {\"count\": " + std::to_string(h.count()) +
           ", \"sum\": " + formatDouble(h.sum()) +
           ", \"min\": " + formatDouble(h.min()) +
           ", \"max\": " + formatDouble(h.max()) + ", \"buckets\": [";
    // Trailing empty buckets are elided for readability.
    std::size_t last = 0;
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      if (h.bucket(i) > 0) {
        last = i + 1;
      }
    }
    for (std::size_t i = 0; i < last; ++i) {
      out += (i > 0 ? ", " : "") + std::to_string(h.bucket(i));
    }
    out += "]}";
  });
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

bool MetricsRegistry::writeJson(const std::string& path) const {
  std::ofstream f(path);
  if (!f) {
    return false;
  }
  f << toJson();
  return static_cast<bool>(f);
}

bool MetricsRegistry::writeCsv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) {
    return false;
  }
  f << "name,kind,value,count,sum,min,max\n";
  for (const auto& [name, inst] : instruments_) {
    switch (inst.kind) {
      case Kind::kCounter:
        f << name << ",counter," << inst.counter->value() << ",,,,\n";
        break;
      case Kind::kGauge:
        f << name << ",gauge," << formatDouble(inst.gauge->value())
          << ",,,,\n";
        break;
      case Kind::kHistogram: {
        const Histogram& h = *inst.histogram;
        f << name << ",histogram,," << h.count() << ","
          << formatDouble(h.sum()) << "," << formatDouble(h.min()) << ","
          << formatDouble(h.max()) << "\n";
        break;
      }
    }
  }
  return static_cast<bool>(f);
}

}  // namespace rtdrm::obs
