#include "obs/trace_buffer.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/assert.hpp"

namespace rtdrm::obs {

namespace {
constexpr char kMagic[8] = {'r', 't', 'd', 'r', 'm', 't', 'r', '\0'};
constexpr std::uint32_t kVersion = 1;
}  // namespace

const char* recordKindName(RecordKind kind) {
  switch (kind) {
    case RecordKind::kGrowthStart:
      return "growth-start";
    case RecordKind::kGrowthTake:
      return "growth-take";
    case RecordKind::kGrowthCheck:
      return "growth-check";
    case RecordKind::kGrowthAccept:
      return "growth-accept";
    case RecordKind::kGrowthExhausted:
      return "growth-exhausted";
    case RecordKind::kThresholdTake:
      return "threshold-take";
    case RecordKind::kThresholdDone:
      return "threshold-done";
    case RecordKind::kMonitorAction:
      return "monitor-action";
    case RecordKind::kReplicate:
      return "replicate";
    case RecordKind::kShutdown:
      return "shutdown";
    case RecordKind::kShed:
      return "shed";
    case RecordKind::kAllocFailure:
      return "alloc-failure";
    case RecordKind::kFailoverScrub:
      return "failover-scrub";
    case RecordKind::kNodeDown:
      return "node-down";
    case RecordKind::kNodeRestart:
      return "node-restart";
    case RecordKind::kMiss:
      return "miss";
    case RecordKind::kBudgetsAssigned:
      return "budgets-assigned";
    case RecordKind::kPlacementChanged:
      return "placement-changed";
    case RecordKind::kManagerDown:
      return "manager-down";
    case RecordKind::kManagerRestart:
      return "manager-restart";
    case RecordKind::kElection:
      return "election";
    case RecordKind::kGossipRound:
      return "gossip-round";
    case RecordKind::kGossipApply:
      return "gossip-apply";
    case RecordKind::kDecisionSuppressed:
      return "decision-suppressed";
    case RecordKind::kDecisionOwner:
      return "decision-owner";
    case RecordKind::kPeriodAdjust:
      return "period-adjust";
  }
  return "?";
}

bool isDecisionKind(RecordKind kind) {
  switch (kind) {
    case RecordKind::kGrowthStart:
    case RecordKind::kGrowthTake:
    case RecordKind::kGrowthCheck:
    case RecordKind::kGrowthAccept:
    case RecordKind::kGrowthExhausted:
    case RecordKind::kThresholdTake:
    case RecordKind::kThresholdDone:
    case RecordKind::kMonitorAction:
    case RecordKind::kReplicate:
    case RecordKind::kShutdown:
    case RecordKind::kShed:
    case RecordKind::kAllocFailure:
    case RecordKind::kFailoverScrub:
      return true;
    // Plane lifecycle records are part of the decision audit (they change
    // who may decide); they never fire with --managers 1, so the legacy
    // golden projection is untouched. Gossip rounds are deliberately NOT
    // in the channel — they are periodic chatter, not decisions.
    case RecordKind::kManagerDown:
    case RecordKind::kManagerRestart:
    case RecordKind::kElection:
    case RecordKind::kDecisionSuppressed:
    case RecordKind::kDecisionOwner:
    // Period adjustment is an adaptation action like replicate/shed; it
    // never fires with --period-adjust off, so the golden projection of
    // the paper configuration is untouched.
    case RecordKind::kPeriodAdjust:
      return true;
    case RecordKind::kNodeDown:
    case RecordKind::kNodeRestart:
    case RecordKind::kMiss:
    case RecordKind::kBudgetsAssigned:
    case RecordKind::kPlacementChanged:
    case RecordKind::kGossipRound:
    case RecordKind::kGossipApply:
      return false;
  }
  return false;
}

TraceBuffer::TraceBuffer(std::size_t capacity) {
  RTDRM_ASSERT(capacity > 0);
  ring_.resize(capacity);
}

void TraceBuffer::record(RecordKind kind, std::uint8_t flags,
                         std::uint16_t stage, std::uint32_t node, double a,
                         double b, double c) {
  TraceRecord& r = ring_[recorded_ % ring_.size()];
  r.t_ms = clock_ ? clock_() : 0.0;
  r.seq = recorded_ + 1;
  r.kind = kind;
  r.flags = flags;
  r.stage = stage;
  r.node = node;
  r.a = a;
  r.b = b;
  r.c = c;
  ++recorded_;
  ++kind_counts_[static_cast<std::uint8_t>(kind)];
}

std::size_t TraceBuffer::size() const {
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(recorded_, ring_.size()));
}

std::uint64_t TraceBuffer::overwritten() const {
  return recorded_ > ring_.size() ? recorded_ - ring_.size() : 0;
}

std::uint64_t TraceBuffer::count(RecordKind kind) const {
  const auto i = static_cast<std::uint8_t>(kind);
  return i < kRecordKindCount ? kind_counts_[i] : 0;
}

void TraceBuffer::forEach(
    const std::function<void(const TraceRecord&)>& fn) const {
  const std::size_t n = size();
  // Oldest retained record sits at recorded_ % capacity once wrapped.
  const std::size_t start =
      recorded_ > ring_.size()
          ? static_cast<std::size_t>(recorded_ % ring_.size())
          : 0;
  for (std::size_t i = 0; i < n; ++i) {
    fn(ring_[(start + i) % ring_.size()]);
  }
}

std::vector<TraceRecord> TraceBuffer::snapshot() const {
  std::vector<TraceRecord> out;
  out.reserve(size());
  forEach([&out](const TraceRecord& r) { out.push_back(r); });
  return out;
}

void TraceBuffer::clear() {
  recorded_ = 0;
  kind_counts_.fill(0);
}

bool TraceBuffer::writeBinary(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return false;
  }
  bool ok = std::fwrite(kMagic, sizeof(kMagic), 1, f) == 1;
  ok = ok && std::fwrite(&kVersion, sizeof(kVersion), 1, f) == 1;
  const std::uint64_t n = size();
  ok = ok && std::fwrite(&n, sizeof(n), 1, f) == 1;
  if (ok) {
    forEach([&ok, f](const TraceRecord& r) {
      ok = ok && std::fwrite(&r, sizeof(r), 1, f) == 1;
    });
  }
  ok = std::fclose(f) == 0 && ok;
  return ok;
}

bool TraceBuffer::readBinary(const std::string& path,
                             std::vector<TraceRecord>& out) {
  out.clear();
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return false;
  }
  char magic[sizeof(kMagic)] = {};
  std::uint32_t version = 0;
  std::uint64_t n = 0;
  bool ok = std::fread(magic, sizeof(magic), 1, f) == 1 &&
            std::memcmp(magic, kMagic, sizeof(kMagic)) == 0 &&
            std::fread(&version, sizeof(version), 1, f) == 1 &&
            version == kVersion && std::fread(&n, sizeof(n), 1, f) == 1;
  if (ok) {
    out.resize(static_cast<std::size_t>(n));
    ok = n == 0 ||
         std::fread(out.data(), sizeof(TraceRecord),
                    static_cast<std::size_t>(n), f) ==
             static_cast<std::size_t>(n);
  }
  std::fclose(f);
  if (!ok) {
    out.clear();
  }
  return ok;
}

}  // namespace rtdrm::obs
