// Structured trace records: the fixed-size binary vocabulary of the
// observability layer.
//
// Every record is one decision or lifecycle step of the adaptive manager,
// identified by a RecordKind and carrying at most three numeric payload
// fields — no strings, no allocation. The decision-audit channel makes the
// paper's Fig.-5 growth loop auditable at runtime: each candidate check
// records both forecast terms (eq.-3 eex and eq.-5/6 ecd), the
// deadline-minus-slack target it was compared against, and the verdict.
#pragma once

#include <cstdint>

namespace rtdrm::obs {

enum class RecordKind : std::uint8_t {
  // ---- decision-audit channel: the Fig.-5 predictive growth loop --------
  kGrowthStart = 0,  ///< replicate() entered: stage; a=budget ms, b=limit ms
  kGrowthTake,       ///< steps 3-5, a processor taken: node; a=its utilization
  kGrowthCheck,      ///< step 6 re-check of one replica: node; a=eex ms,
                     ///< b=ecd ms, c=limit ms; accept flag = forecast fits
  kGrowthAccept,     ///< step 7: every forecast fits; a=final replica count
  kGrowthExhausted,  ///< step 2.1: processors ran out; a=replica count reached
  // ---- decision-audit channel: the Fig.-7 threshold heuristic -----------
  kThresholdTake,    ///< node below UT taken: node; a=utilization, b=UT
  kThresholdDone,    ///< replicate() finished: a=replicas added, b=final size
  // ---- manager actions --------------------------------------------------
  kMonitorAction,    ///< monitor flagged a candidate: stage; accept flag =
                     ///< replicate (set) vs shutdown (clear)
  kReplicate,        ///< a replica set grew (effective action): stage;
                     ///< a=new size
  kShutdown,         ///< a replica shut down: stage, node=victim; a=new size
  kShed,             ///< load-shed fraction changed: a=new fraction
  kAllocFailure,     ///< an allocation failure was counted: stage
  kFailoverScrub,    ///< a dead node scrubbed from a stage: stage, node=dead
  kNodeDown,         ///< failure-detector down notification handled: node
  kNodeRestart,      ///< restart notification: node
  // ---- period lifecycle -------------------------------------------------
  kMiss,             ///< end-to-end deadline missed: a=latency ms, b=period
  kBudgetsAssigned,  ///< EQF budgets (re)assigned: a=workload tracks
  kPlacementChanged, ///< a new placement became effective
  // ---- decentralized management plane ------------------------------------
  // None of these fire with --managers 1, so the legacy decision-audit
  // projection is byte-identical to the centralized build.
  kManagerDown,      ///< manager endpoint declared down: a=manager index
  kManagerRestart,   ///< manager endpoint rejoined as standby: a=manager
  kElection,         ///< a standby took over: a=new epoch; node=new active's
                     ///< home node; b=new active manager index
  kGossipRound,      ///< one gossip broadcast round: a=manager, b=round seq
  kGossipApply,      ///< a summary applied to the active view: a=origin
                     ///< manager, b=seq, c=summary age ms
  kDecisionSuppressed,  ///< a decision period skipped during the gap:
                        ///< a=manager that would have decided
  kDecisionOwner,    ///< decision provenance: actions this period were made
                     ///< by manager a under epoch b
  // ---- elastic period adjustment (extension) ------------------------------
  // Appended last: never fires with --period-adjust off, so historical
  // trace dumps and the golden decision projection stay byte-identical.
  kPeriodAdjust,     ///< release period dilated/contracted: a=new period ms,
                     ///< b=old period ms; accept flag = dilation
};

/// One past kValid's last enumerator; kept adjacent so iteration and
/// exhaustiveness checks cannot silently miss a new kind.
inline constexpr std::uint8_t kRecordKindCount =
    static_cast<std::uint8_t>(RecordKind::kPeriodAdjust) + 1;

/// Stable lower-case token per kind ("?" for out-of-range values).
const char* recordKindName(RecordKind kind);

/// True for the kinds that form the decision-audit channel — the stream the
/// golden-trace test pins down (ordering and verdicts, never raw floats).
bool isDecisionKind(RecordKind kind);

/// Set in TraceRecord::flags when the record carries a positive verdict
/// (forecast fits / candidate accepted / replicate rather than shutdown).
inline constexpr std::uint8_t kFlagAccept = 0x1;

/// `node` value when a record is not about a particular processor.
inline constexpr std::uint32_t kRecordNoNode = 0xffffffffu;

/// Fixed-size binary trace record. 48 bytes, trivially copyable: the ring
/// buffer and the on-disk dump share this exact layout.
struct TraceRecord {
  double t_ms = 0.0;       ///< simulation time of the decision
  std::uint64_t seq = 0;   ///< global record sequence (gap-free, 1-based)
  RecordKind kind{};       ///< what happened
  std::uint8_t flags = 0;  ///< kFlagAccept et al.
  std::uint16_t stage = 0; ///< subtask index (0 when not applicable)
  std::uint32_t node = kRecordNoNode;  ///< processor id, if any
  double a = 0.0;          ///< payload; meaning depends on `kind`
  double b = 0.0;
  double c = 0.0;

  bool accepted() const { return (flags & kFlagAccept) != 0; }
};
static_assert(sizeof(TraceRecord) == 48, "records are written to disk raw");

}  // namespace rtdrm::obs
