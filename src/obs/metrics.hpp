// MetricsRegistry: named counters, gauges, and histograms.
//
// Instruments register lazily by name and are owned by the registry;
// callers hold references and bump them on the hot path (a counter add is
// one integer increment). Components export into a registry *pull-style*
// via their `exportMetrics(MetricsRegistry&)` members — the registry never
// reaches into sim/net/node/core/fault, which keeps obs at the bottom of
// the dependency order.
//
// Snapshots are deterministic: instruments are emitted in sorted name
// order, so two runs that record the same values produce byte-identical
// JSON/CSV.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

namespace rtdrm::obs {

/// Monotonic integer count.
///
/// Increments are relaxed atomics: counters are bumped from sharded-engine
/// worker threads (fast mode) while the coordinator may snapshot, and a
/// plain uint64 would be a data race under TSan. Relaxed ordering is
/// enough — each add is independent and exportMetrics() only runs on
/// quiescent components — and costs one lock-free RMW, no fences.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  /// Sets the absolute value (for exporting pre-existing component
  /// counters without double counting across snapshots).
  void set(std::uint64_t v) { value_.store(v, std::memory_order_relaxed); }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written point-in-time value.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Distribution sketch: count/sum/min/max plus power-of-two buckets
/// (bucket i counts observations in [2^(i-1), 2^i); bucket 0 counts
/// values < 1, the last bucket is open-ended).
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 32;

  void observe(double v);
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double mean() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }
  std::uint64_t bucket(std::size_t i) const { return buckets_[i]; }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::array<std::uint64_t, kBuckets> buckets_{};
};

class MetricsRegistry {
 public:
  /// Finds or creates the named instrument. A name is one kind forever;
  /// asking for an existing name as a different kind asserts.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Lookup without creation (nullptr when absent or a different kind).
  const Counter* findCounter(const std::string& name) const;
  const Gauge* findGauge(const std::string& name) const;
  const Histogram* findHistogram(const std::string& name) const;

  std::size_t size() const { return instruments_.size(); }

  /// Deterministic (sorted-by-name) JSON snapshot:
  /// {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string toJson() const;
  bool writeJson(const std::string& path) const;
  /// Flat CSV: name,kind,value,count,sum,min,max — one row per instrument.
  bool writeCsv(const std::string& path) const;

  void forEachCounter(
      const std::function<void(const std::string&, const Counter&)>& fn) const;
  void forEachGauge(
      const std::function<void(const std::string&, const Gauge&)>& fn) const;
  void forEachHistogram(
      const std::function<void(const std::string&, const Histogram&)>& fn)
      const;

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };
  struct Instrument {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Instrument& get(const std::string& name, Kind kind);

  // std::map: iteration order == sorted name order == snapshot order.
  std::map<std::string, Instrument> instruments_;
};

}  // namespace rtdrm::obs
