// Allocation-light structured trace sink.
//
// A bounded ring of fixed-size TraceRecords: recording is a bounds check,
// a struct store, and a couple of counter increments — no strings, no
// allocation after construction. On overflow the oldest records are
// overwritten (and counted), but the per-kind totals keep counting, so
// count-based reconciliation (the obs cross-check tests) is immune to
// wrap-around.
//
// Nothing in the simulation ever *reads* the buffer while running: sinks
// are passive, which is what makes an attached session behaviorally
// neutral (asserted by the neutrality tests and the in-binary bench gate).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/record.hpp"

namespace rtdrm::obs {

class TraceBuffer {
 public:
  /// `capacity` records are retained (oldest overwritten beyond that).
  explicit TraceBuffer(std::size_t capacity = 1u << 16);

  /// Simulation-time source for records posted through this buffer. The
  /// obs layer sits below the simulator in the dependency order, so the
  /// clock arrives as a closure (wired by the scenario/episode plumbing).
  void setClock(std::function<double()> now_ms) { clock_ = std::move(now_ms); }

  /// Appends one record; stamps time (from the clock, 0 when unset) and
  /// the global sequence number.
  void record(RecordKind kind, std::uint8_t flags = 0, std::uint16_t stage = 0,
              std::uint32_t node = kRecordNoNode, double a = 0.0,
              double b = 0.0, double c = 0.0);

  std::size_t capacity() const { return ring_.size(); }
  /// Records currently retained (<= capacity).
  std::size_t size() const;
  /// Total records ever posted.
  std::uint64_t recorded() const { return recorded_; }
  /// Records lost to ring wrap-around.
  std::uint64_t overwritten() const;
  /// Total posts of `kind`, unaffected by wrap-around.
  std::uint64_t count(RecordKind kind) const;

  /// Visits retained records oldest-first.
  void forEach(const std::function<void(const TraceRecord&)>& fn) const;
  /// Copies the retained records oldest-first.
  std::vector<TraceRecord> snapshot() const;

  void clear();

  // ---- binary dump ("rtt" format: magic + version + count + raw records).
  bool writeBinary(const std::string& path) const;
  /// Loads a dump written by writeBinary. Returns false on open/format
  /// errors; `out` holds the records oldest-first on success.
  static bool readBinary(const std::string& path,
                         std::vector<TraceRecord>& out);

 private:
  std::function<double()> clock_;
  std::vector<TraceRecord> ring_;
  std::uint64_t recorded_ = 0;  ///< next write index = recorded_ % capacity
  std::array<std::uint64_t, kRecordKindCount> kind_counts_{};
};

}  // namespace rtdrm::obs
