// Exporters for trace dumps: Chrome/Perfetto trace-event JSON and the
// plain-text decision-audit projection the golden-trace test pins down.
#pragma once

#include <string>
#include <vector>

#include "obs/record.hpp"

namespace rtdrm::obs {

/// Chrome trace-event JSON (the format chrome://tracing and
/// ui.perfetto.dev open directly). Decision and lifecycle records become
/// instant events (ph "i") on one track per subtask stage; shed-fraction
/// changes additionally become a counter track (ph "C"). Timestamps are
/// microseconds per the spec.
std::string toPerfettoJson(const std::vector<TraceRecord>& records);
bool writePerfettoJson(const std::string& path,
                       const std::vector<TraceRecord>& records);

/// One stable text line per record: kind, stage, node, verdict, and
/// integer-valued payloads only — never floats or timestamps, so the
/// projection survives FP-formatting and timing-neutral changes.
std::string formatDecisionLine(const TraceRecord& r);

/// The decision-audit channel of `records` (isDecisionKind order
/// preserved), one formatDecisionLine per element.
std::vector<std::string> decisionAuditLines(
    const std::vector<TraceRecord>& records);

/// Writes decisionAuditLines to `path`, newline-terminated.
bool writeDecisionAudit(const std::string& path,
                        const std::vector<TraceRecord>& records);

}  // namespace rtdrm::obs
