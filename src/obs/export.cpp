#include "obs/export.hpp"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <fstream>

namespace rtdrm::obs {

namespace {

void appendf(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out += buf;
}

/// True when `a` of this kind is an integer-valued count worth printing in
/// the golden projection.
bool payloadIsCount(RecordKind kind) {
  switch (kind) {
    case RecordKind::kGrowthAccept:
    case RecordKind::kGrowthExhausted:
    case RecordKind::kThresholdDone:
    case RecordKind::kReplicate:
    case RecordKind::kShutdown:
    // Plane records: `a` is the manager index (or the new epoch for
    // elections) — integers, stable across FP-formatting changes.
    case RecordKind::kManagerDown:
    case RecordKind::kManagerRestart:
    case RecordKind::kElection:
    case RecordKind::kDecisionSuppressed:
    case RecordKind::kDecisionOwner:
      return true;
    default:
      return false;
  }
}

/// True when the kind's flags carry a meaningful accept/reject verdict.
bool carriesVerdict(RecordKind kind) {
  return kind == RecordKind::kGrowthCheck || kind == RecordKind::kMonitorAction;
}

}  // namespace

std::string toPerfettoJson(const std::vector<TraceRecord>& records) {
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  for (const TraceRecord& r : records) {
    if (!first) {
      out += ",";
    }
    first = false;
    // Chrome trace-event timestamps are microseconds.
    appendf(out, "\n{\"name\": \"%s\", \"ph\": \"i\", \"s\": \"t\", "
                 "\"ts\": %.3f, \"pid\": 1, \"tid\": %u",
            recordKindName(r.kind), r.t_ms * 1000.0,
            static_cast<unsigned>(r.stage));
    out += ", \"args\": {";
    appendf(out, "\"seq\": %" PRIu64, r.seq);
    if (r.node != kRecordNoNode) {
      appendf(out, ", \"node\": %u", r.node);
    }
    if (carriesVerdict(r.kind)) {
      appendf(out, ", \"accept\": %s", r.accepted() ? "true" : "false");
    }
    appendf(out, ", \"a\": %g, \"b\": %g, \"c\": %g}}", r.a, r.b, r.c);
    if (r.kind == RecordKind::kShed) {
      // Shed fraction additionally drives a counter track so Perfetto
      // plots it as a stepped line.
      appendf(out,
              ",\n{\"name\": \"shed-fraction\", \"ph\": \"C\", "
              "\"ts\": %.3f, \"pid\": 1, \"args\": {\"fraction\": %g}}",
              r.t_ms * 1000.0, r.a);
    }
  }
  out += "\n]}\n";
  return out;
}

bool writePerfettoJson(const std::string& path,
                       const std::vector<TraceRecord>& records) {
  std::ofstream f(path);
  if (!f) {
    return false;
  }
  f << toPerfettoJson(records);
  return static_cast<bool>(f);
}

std::string formatDecisionLine(const TraceRecord& r) {
  std::string out = recordKindName(r.kind);
  appendf(out, " stage=%u", static_cast<unsigned>(r.stage));
  if (r.node != kRecordNoNode) {
    appendf(out, " node=%u", r.node);
  }
  if (carriesVerdict(r.kind)) {
    out += r.accepted() ? " accept" : " reject";
  }
  if (payloadIsCount(r.kind)) {
    appendf(out, " n=%lld", static_cast<long long>(r.a));
  }
  return out;
}

std::vector<std::string> decisionAuditLines(
    const std::vector<TraceRecord>& records) {
  std::vector<std::string> lines;
  for (const TraceRecord& r : records) {
    if (isDecisionKind(r.kind)) {
      lines.push_back(formatDecisionLine(r));
    }
  }
  return lines;
}

bool writeDecisionAudit(const std::string& path,
                        const std::vector<TraceRecord>& records) {
  std::ofstream f(path);
  if (!f) {
    return false;
  }
  for (const std::string& line : decisionAuditLines(records)) {
    f << line << "\n";
  }
  return static_cast<bool>(f);
}

}  // namespace rtdrm::obs
