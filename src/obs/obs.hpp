// The attachable observability bundle: one structured trace ring plus one
// metrics registry. Components take an `Observability*` (default nullptr);
// a null pointer means every instrumentation site reduces to one branch,
// which is what the neutrality gates assert stays behaviorally invisible.
#pragma once

#include "obs/metrics.hpp"
#include "obs/trace_buffer.hpp"

namespace rtdrm::obs {

struct Observability {
  TraceBuffer trace;
  MetricsRegistry metrics;

  Observability() = default;
  explicit Observability(std::size_t trace_capacity) : trace(trace_capacity) {}
};

}  // namespace rtdrm::obs
