#include "task/pipeline.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"

namespace rtdrm::task {

PipelineRun::PipelineRun(Runtime rt, const TaskSpec& spec,
                         Placement placement, DataSize workload,
                         std::uint64_t period_index, Xoshiro256& noise_rng,
                         PipelineConfig config, DoneFn on_done)
    : rt_(rt),
      spec_(spec),
      placement_(std::move(placement)),
      rng_(noise_rng),
      config_(config),
      on_done_(std::move(on_done)) {
  RTDRM_ASSERT(placement_.stageCount() == spec_.stageCount());
  record_.period_index = period_index;
  record_.workload = workload;
  record_.release = rt_.sim.now();
  record_.stages.resize(spec_.stageCount());
  // Tags are diagnostic-only (never interpreted); build them once per run,
  // not once per replica — at 256 nodes a stage submits hundreds of jobs.
  job_tags_.reserve(spec_.stageCount());
  for (const SubtaskSpec& st : spec_.subtasks) {
    job_tags_.push_back(spec_.name + "/" + st.name);
  }
  msg_tags_.reserve(spec_.stageCount());
  for (std::size_t s = 1; s < spec_.stageCount(); ++s) {
    msg_tags_.push_back(spec_.name + "/m" + std::to_string(s));
  }
  if (rt_.engine != nullptr && rt_.engine->shardCount() > 1) {
    alive_ = std::make_shared<bool>(true);
  }
  cutoff_event_ = rt_.sim.scheduleAfter(
      spec_.period * config_.cutoff_periods, [this] { abortAtCutoff(); });
  beginStage(0);
}

PipelineRun::~PipelineRun() {
  if (!finished_) {
    rt_.sim.cancel(cutoff_event_);
    abortOutstandingJobs();
    finished_ = true;
  }
  if (alive_ != nullptr) {
    *alive_ = false;  // strands any completion post still in a mailbox
  }
  // Message-delivery closures hold a raw `this`; the TaskRunner contract is
  // that runs are only destroyed after on_done fired AND in-flight
  // deliveries were drained or the whole simulator is being torn down.
}

void PipelineRun::abortOutstandingJobs() {
  sim::ShardedEngine* eng = rt_.engine;
  for (std::size_t i = outstanding_head_; i < outstanding_.size(); ++i) {
    const ProcessorId pid = outstanding_[i].first;
    if (pid == kNoNode) {
      continue;
    }
    const std::size_t dst = eng ? rt_.cluster.shardOf(pid) : 0;
    if (eng != nullptr && dst != 0) {
      // The job lives on a data shard: the abort must execute there. By
      // post ordering it lands after the submit it chases; if the job
      // finished in between, the abort is a no-op.
      node::Processor* cpu = &rt_.cluster.processor(pid);
      const node::JobId jid = outstanding_[i].second;
      eng->post(0, dst, eng->postHorizon(0),
                [cpu, jid] { cpu->abort(jid); });
    } else {
      rt_.cluster.processor(pid).abort(outstanding_[i].second);
    }
  }
}

void PipelineRun::beginStage(std::size_t s) {
  current_stage_ = s;
  const ReplicaSet& rs = placement_.stage(s);
  const std::size_t k = rs.size();
  StageRecord& rec = record_.stages[s];
  rec.start = rt_.sim.now();
  rec.replicas = k;
  pending_in_stage_ = k;
  stage_start_true_ = rt_.sim.now();

  replica_exec_start_.assign(k, SimTime{});

  if (s == 0) {
    // Sensor data is resident on the first subtask's node(s); no wire hop.
    stage_start_node_ = rs.primary();
    for (std::size_t r = 0; r < k; ++r) {
      submitReplicaJob(s, r, rt_.sim.now());
    }
    return;
  }

  // Ship each replica its 1/k share of the stream from the predecessor's
  // primary node (paper §4.2.1.3: replicas share the data stream; each
  // message now transports 1/k of the total data).
  const ProcessorId from = placement_.stage(s - 1).primary();
  stage_start_node_ = from;
  const DataSize share = record_.workload / static_cast<double>(k);
  const Bytes payload =
      Bytes::of(share.count() * spec_.messages[s - 1].bytes_per_track);
  for (std::size_t r = 0; r < k; ++r) {
    const ProcessorId to = rs.nodes()[r];
    // 16-byte capture: fits std::function's inline buffer, so the hot path
    // stays allocation-free (hundreds of messages per stage at 256 nodes).
    const auto s32 = static_cast<std::uint32_t>(s);
    const auto r32 = static_cast<std::uint32_t>(r);
    rt_.net.send(net::Message{
        from, to, payload, msg_tags_[s - 1],
        [this, s32, r32](const net::MessageReceipt& receipt) {
          RTDRM_ASSERT(inflight_msgs_ > 0);
          --inflight_msgs_;
          if (finished_) {
            return;  // aborted while the frame was in flight
          }
          onMessageDelivered(s32, r32, receipt.totalDelay(),
                             receipt.bufferDelay());
        }});
    ++inflight_msgs_;
  }
}

void PipelineRun::onMessageDelivered(std::size_t s, std::size_t r,
                                     SimDuration total_delay,
                                     SimDuration buffer_delay) {
  StageRecord& rec = record_.stages[s];
  rec.worst_msg = std::max(rec.worst_msg, total_delay);
  rec.worst_msg_buffer = std::max(rec.worst_msg_buffer, buffer_delay);
  submitReplicaJob(s, r, rt_.sim.now());
}

void PipelineRun::submitReplicaJob(std::size_t s, std::size_t r,
                                   SimTime exec_start) {
  const ReplicaSet& rs = placement_.stage(s);
  const ProcessorId pid = rs.nodes()[r];
  const DataSize share =
      record_.workload / static_cast<double>(rs.size());
  const SubtaskSpec& st = spec_.subtasks[s];
  const SimDuration demand =
      st.cost.demand(share) * rng_.lognormalUnitMean(st.noise_sigma);
  // The start stamp lives in replica_exec_start_ so the completion capture
  // is 16 bytes and std::function stores it inline (no allocation per job).
  replica_exec_start_[r] = exec_start;
  const auto s32 = static_cast<std::uint32_t>(s);
  const auto r32 = static_cast<std::uint32_t>(r);
  // Dynamic-priority metadata: the job's absolute deadline is this
  // instance's release plus the task's relative deadline (EDF/LLF rank),
  // its period the live release cadence (RMS rank). Zero config = no
  // metadata, matching jobs from sources without timing contracts.
  const SimTime job_deadline = config_.job_deadline > SimDuration::zero()
                                   ? record_.release + config_.job_deadline
                                   : SimTime::zero();
  sim::ShardedEngine* eng = rt_.engine;
  const std::size_t dst = eng ? rt_.cluster.shardOf(pid) : 0;
  if (eng != nullptr && dst != 0) {
    // Cross-shard submit: the job id is reserved here (abort bookkeeping
    // needs it now), the submit itself is posted to the owning shard, and
    // the completion posts back to shard 0 guarded by the run's liveness
    // token. Net effect vs the legacy path: submit and completion each
    // slip by exactly the lookahead (~12 us) — the modelled minimum
    // cross-shard latency, independent of how windows are sized.
    node::Processor* cpu = &rt_.cluster.processor(pid);
    const node::JobId jid = cpu->reserveJobId();
    outstanding_.emplace_back(pid, jid);
    const SimTime at = eng->postHorizon(0);
    replica_exec_start_[r] = at;
    PipelineRun* self = this;
    node::Job job{
        demand,
        [eng, dst, alive = alive_, self, s32, r32] {
          eng->post(dst, 0, eng->postHorizon(dst),
                    [alive, self, s32, r32] {
                      if (!*alive || self->finished_) {
                        return;  // run aborted/destroyed while in flight
                      }
                      self->onReplicaDone(s32, r32,
                                          self->replica_exec_start_[r32]);
                    });
        },
        job_tags_[s], config_.job_priority, job_deadline, config_.job_period};
    eng->post(0, dst, at, [cpu, jid, job = std::move(job)]() mutable {
      cpu->submitReserved(jid, std::move(job));
    });
    return;
  }
  const node::JobId jid = rt_.cluster.processor(pid).submit(node::Job{
      demand,
      [this, s32, r32] { onReplicaDone(s32, r32, replica_exec_start_[r32]); },
      job_tags_[s], config_.job_priority, job_deadline, config_.job_period});
  outstanding_.emplace_back(pid, jid);
}

void PipelineRun::onReplicaDone(std::size_t s, std::size_t r,
                                SimTime exec_start) {
  if (finished_) {
    return;
  }
  const ProcessorId pid = placement_.stage(s).nodes()[r];
  // Drop the bookkeeping entry (jobs finish roughly in submission order, so
  // a linear scan from the live head is cheap). Tombstone instead of erase:
  // erasing would shift the tail on every completion.
  for (std::size_t i = outstanding_head_; i < outstanding_.size(); ++i) {
    if (outstanding_[i].first == pid) {
      // Conservative: the first live entry on this processor is the oldest.
      outstanding_[i].first = kNoNode;
      break;
    }
  }
  while (outstanding_head_ < outstanding_.size() &&
         outstanding_[outstanding_head_].first == kNoNode) {
    ++outstanding_head_;
  }
  StageRecord& rec = record_.stages[s];
  const SimDuration exec = rt_.sim.now() - exec_start;
  if (exec >= rec.worst_exec) {
    rec.worst_exec = exec;
    rec.worst_exec_node = pid;
  }
  RTDRM_ASSERT(pending_in_stage_ > 0);
  if (--pending_in_stage_ == 0) {
    rec.end = rt_.sim.now();
    rec.completed = true;
    // What the monitor would measure with local clocks: start stamped on
    // the sender node, end on the last-finishing replica's node.
    rec.measured_latency = rt_.clocks.measure(stage_start_node_,
                                              stage_start_true_, pid,
                                              rt_.sim.now());
    finishStage(s);
  }
}

void PipelineRun::finishStage(std::size_t s) {
  if (s + 1 < spec_.stageCount()) {
    beginStage(s + 1);
  } else {
    complete();
  }
}

void PipelineRun::complete() {
  rt_.sim.cancel(cutoff_event_);
  record_.finish = rt_.sim.now();
  record_.completed = true;
  finished_ = true;
  on_done_(record_);
}

void PipelineRun::abortAtCutoff() {
  abortOutstandingJobs();
  outstanding_.clear();
  outstanding_head_ = 0;
  record_.finish = rt_.sim.now();
  record_.completed = false;
  finished_ = true;
  on_done_(record_);
}

}  // namespace rtdrm::task
