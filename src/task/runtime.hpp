// Bundle of substrate references a pipeline instance executes against.
#pragma once

#include "net/clock_sync.hpp"
#include "net/ethernet.hpp"
#include "node/cluster.hpp"
#include "sim/simulator.hpp"

namespace rtdrm::task {

struct Runtime {
  sim::Simulator& sim;
  node::Cluster& cluster;
  net::Ethernet& net;
  net::ClockFabric& clocks;
};

}  // namespace rtdrm::task
