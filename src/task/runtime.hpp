// Bundle of substrate references a pipeline instance executes against.
#pragma once

#include "net/clock_sync.hpp"
#include "net/network_model.hpp"
#include "node/cluster.hpp"
#include "sim/sharded.hpp"
#include "sim/simulator.hpp"

namespace rtdrm::task {

struct Runtime {
  /// The control shard's simulator (the only simulator when unsharded):
  /// managers, pipelines, the network substrate and clocks all live here.
  sim::Simulator& sim;
  node::Cluster& cluster;
  net::NetworkModel& net;
  net::ClockFabric& clocks;
  /// Multi-shard engine when processors live on data shards; nullptr for
  /// the legacy single-queue path. Pipelines marshal job submits, aborts
  /// and completions through it.
  sim::ShardedEngine* engine = nullptr;
};

}  // namespace rtdrm::task
