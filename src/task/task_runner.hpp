// Periodic release of a task's pipeline instances.
//
// Each period the runner reads the offered workload from its source
// function (Table 1: data arrival period = 1 s), snapshots the current
// placement, and launches a PipelineRun. Completed/aborted runs are swept
// lazily at period boundaries once their in-flight callbacks have drained.
//
// The resource manager mutates the placement between periods via
// setPlacement(); in-flight instances keep their snapshot (no torn reads).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "task/pipeline.hpp"
#include "task/runtime.hpp"
#include "task/spec.hpp"

namespace rtdrm::task {

class TaskRunner {
 public:
  /// Offered workload for a given period index.
  using WorkloadFn = std::function<DataSize(std::uint64_t period)>;
  /// Observer invoked with every completed (or aborted) period record.
  using RecordFn = std::function<void(const PeriodRecord&)>;

  TaskRunner(Runtime rt, const TaskSpec& spec, Placement initial,
             WorkloadFn workload, Xoshiro256 noise_rng,
             PipelineConfig pipeline_config = {}, RecordFn on_record = {});
  ~TaskRunner();
  TaskRunner(const TaskRunner&) = delete;
  TaskRunner& operator=(const TaskRunner&) = delete;

  /// Begin periodic releases; the first period starts at `first_release`.
  void start(SimTime first_release);
  /// Stop future releases (in-flight instances drain on their own).
  void stop();

  const TaskSpec& spec() const { return spec_; }
  const Placement& placement() const { return placement_; }
  /// New placement takes effect from the next release.
  void setPlacement(Placement p) { placement_ = std::move(p); }

  std::uint64_t periodsReleased() const { return released_; }
  std::size_t activeRuns() const;
  /// Workload offered in the most recent released period.
  DataSize currentWorkload() const { return current_workload_; }

  /// Elastic period adjustment (manager's second adaptation lever): change
  /// the release cadence within [spec.period, spec.effectiveMaxPeriod()].
  /// Takes effect from the next release (the pending one keeps its time);
  /// new pipeline jobs carry the new period as their RMS rank.
  void setPeriod(SimDuration period);
  /// The live release period (== spec().period unless dilated).
  SimDuration currentPeriod() const { return current_period_; }

 private:
  void onPeriod(std::uint64_t idx);
  void sweep();

  Runtime rt_;
  const TaskSpec& spec_;
  Placement placement_;
  WorkloadFn workload_;
  Xoshiro256 noise_rng_;
  PipelineConfig pipeline_config_;
  RecordFn on_record_;

  std::unique_ptr<sim::PeriodicActivity> ticker_;
  std::vector<std::unique_ptr<PipelineRun>> runs_;
  std::uint64_t released_ = 0;
  DataSize current_workload_ = DataSize::zero();
  SimDuration current_period_ = SimDuration::zero();
};

}  // namespace rtdrm::task
