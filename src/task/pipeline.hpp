// Execution of one period of a periodic task on the simulated cluster.
//
// A PipelineRun drives the subtask chain: for each stage it ships each
// replica its 1/k share of the data stream over the Ethernet (from the
// predecessor's primary node), runs the replica's CPU job, and advances
// when every replica has finished ("the data stream is shared among
// replicas" — paper item 6). Timing is recorded both in true simulation
// time and as the run-time monitor would *measure* it with per-node
// synchronized clocks.
//
// Instances are independent: a new period may start while the previous one
// is still draining (the "asynchronous" behaviour the paper targets). A
// cutoff aborts pathological instances so overload cannot snowball forever.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "task/runtime.hpp"
#include "task/spec.hpp"

namespace rtdrm::task {

/// Timing record of one stage (subtask + its incoming messages).
struct StageRecord {
  /// When the predecessor finished and this stage's messages were enqueued.
  SimTime start;
  /// When the last replica finished executing.
  SimTime end;
  bool completed = false;
  std::size_t replicas = 1;
  /// end - start, true simulation time.
  SimDuration trueLatency() const { return end - start; }
  /// Stage latency as the monitor measures it with local clocks
  /// (start stamped on the sender node, end on the last replica's node).
  SimDuration measured_latency = SimDuration::zero();
  /// Max single-replica CPU response time within the stage.
  SimDuration worst_exec = SimDuration::zero();
  /// Node of the replica that produced worst_exec (valid when completed).
  ProcessorId worst_exec_node{};
  /// Max single-message delay within the stage (zero for stage 0).
  SimDuration worst_msg = SimDuration::zero();
  /// Max observed message buffer delay (receipt.bufferDelay()).
  SimDuration worst_msg_buffer = SimDuration::zero();
};

/// Full record of one period of one task.
struct PeriodRecord {
  std::uint64_t period_index = 0;
  DataSize workload;
  SimTime release;
  SimTime finish;
  bool completed = false;  ///< false => aborted at cutoff
  std::vector<StageRecord> stages;

  SimDuration endToEnd() const { return finish - release; }
  bool missed(SimDuration deadline) const {
    return !completed || endToEnd() > deadline;
  }
};

struct PipelineConfig {
  /// Instances still running after cutoff * period are aborted.
  double cutoff_periods = 3.0;
  /// Scheduling priority of the subtask jobs (only meaningful on
  /// SchedPolicy::kPriority nodes; lower runs first). Pair with a higher
  /// BackgroundLoadConfig::priority to isolate the task from ambient load.
  int job_priority = 0;
  /// Deadline/period metadata stamped on every CPU job for the
  /// dynamic-priority scheduling policies (EDF/RMS/LLF). `job_deadline` is
  /// the task's *relative* end-to-end deadline — each job carries the
  /// absolute release + job_deadline — and `job_period` the release
  /// period, kept in sync with the live (possibly dilated) period by the
  /// TaskRunner. zero() = no metadata; such jobs rank behind every
  /// deadline/period-carrying one on EDF/RMS/LLF nodes and the fields are
  /// ignored entirely by RR/FIFO/priority.
  SimDuration job_deadline = SimDuration::zero();
  SimDuration job_period = SimDuration::zero();
};

class PipelineRun {
 public:
  using DoneFn = std::function<void(const PeriodRecord&)>;

  /// Constructs and immediately releases the instance at sim.now().
  /// `noise_rng` must outlive the run. `on_done` fires exactly once, on
  /// completion or abort.
  PipelineRun(Runtime rt, const TaskSpec& spec, Placement placement,
              DataSize workload, std::uint64_t period_index,
              Xoshiro256& noise_rng, PipelineConfig config, DoneFn on_done);
  ~PipelineRun();
  PipelineRun(const PipelineRun&) = delete;
  PipelineRun& operator=(const PipelineRun&) = delete;

  bool finished() const { return finished_; }
  /// True once on_done has fired AND no delivery callback can still arrive;
  /// the owner must not destroy the run before this (closures hold `this`).
  bool safeToDestroy() const { return finished_ && inflight_msgs_ == 0; }
  const Placement& placement() const { return placement_; }

 private:
  void beginStage(std::size_t s);
  void onMessageDelivered(std::size_t s, std::size_t r,
                          SimDuration total_delay, SimDuration buffer_delay);
  void submitReplicaJob(std::size_t s, std::size_t r, SimTime exec_start);
  void onReplicaDone(std::size_t s, std::size_t r, SimTime exec_start);
  void finishStage(std::size_t s);
  void complete();
  void abortAtCutoff();
  /// Aborts every live outstanding job — directly on the legacy path,
  /// via engine posts to the owning shards when sharded.
  void abortOutstandingJobs();

  Runtime rt_;
  const TaskSpec& spec_;
  Placement placement_;
  Xoshiro256& rng_;
  PipelineConfig config_;
  DoneFn on_done_;

  PeriodRecord record_;
  std::size_t pending_in_stage_ = 0;
  std::size_t current_stage_ = 0;
  /// Node whose clock stamped the current stage's start (sender side).
  ProcessorId stage_start_node_{};
  SimTime stage_start_true_;
  /// Per-replica execution start stamps for the current stage. Kept out of
  /// the completion closures so their captures fit std::function's inline
  /// buffer (stages are strictly sequential, so one vector suffices).
  std::vector<SimTime> replica_exec_start_;
  /// Diagnostic tags, one per stage, built once per run: a job or message
  /// carries a copy instead of re-concatenating per replica.
  std::vector<std::string> job_tags_;
  std::vector<std::string> msg_tags_;
  /// Outstanding CPU jobs for abort: (processor, job). Completed entries
  /// are tombstoned (processor = kNoNode) rather than erased — an erase
  /// would shift the whole tail once per completion — and `head_` skips the
  /// dead prefix. The live entries keep submission order, so "first live
  /// entry on this processor" still selects the oldest.
  std::vector<std::pair<ProcessorId, node::JobId>> outstanding_;
  std::size_t outstanding_head_ = 0;
  sim::EventId cutoff_event_{};
  std::size_t inflight_msgs_ = 0;
  bool finished_ = false;
  /// Liveness token for cross-shard completion posts (sharded engine
  /// only). A job finishing on a data shard posts its completion back to
  /// shard 0; by the time that post executes this run may have been
  /// cutoff-aborted and destroyed, so the post captures a copy of this
  /// token — flipped to false by the destructor — and checks it before
  /// touching `this`.
  std::shared_ptr<bool> alive_;
};

}  // namespace rtdrm::task
