#include "task/task_runner.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace rtdrm::task {

TaskRunner::TaskRunner(Runtime rt, const TaskSpec& spec, Placement initial,
                       WorkloadFn workload, Xoshiro256 noise_rng,
                       PipelineConfig pipeline_config, RecordFn on_record)
    : rt_(rt),
      spec_(spec),
      placement_(std::move(initial)),
      workload_(std::move(workload)),
      noise_rng_(noise_rng),
      pipeline_config_(pipeline_config),
      on_record_(std::move(on_record)) {
  RTDRM_ASSERT(workload_ != nullptr);
  RTDRM_ASSERT(placement_.stageCount() == spec_.stageCount());
  current_period_ = spec_.period;
  // Default the pipeline's dynamic-priority metadata from the spec so
  // EDF/RMS/LLF nodes see real ranks without per-caller wiring; explicit
  // config wins (multi-task deployments may want distinct contracts).
  if (pipeline_config_.job_deadline == SimDuration::zero()) {
    pipeline_config_.job_deadline = spec_.deadline;
  }
  if (pipeline_config_.job_period == SimDuration::zero()) {
    pipeline_config_.job_period = spec_.period;
  }
  ticker_ = std::make_unique<sim::PeriodicActivity>(
      rt_.sim, spec_.period, [this](std::uint64_t idx) { onPeriod(idx); });
}

TaskRunner::~TaskRunner() {
  // PipelineRun destructors abort their outstanding jobs; destruction order
  // within runs_ is irrelevant because runs are independent.
}

void TaskRunner::start(SimTime first_release) { ticker_->start(first_release); }

void TaskRunner::stop() { ticker_->stop(); }

void TaskRunner::setPeriod(SimDuration period) {
  RTDRM_ASSERT_MSG(period >= spec_.period &&
                       period <= spec_.effectiveMaxPeriod(),
                   "period outside the task's elastic bounds");
  current_period_ = period;
  ticker_->setPeriod(period);
  pipeline_config_.job_period = period;  // RMS rank follows the live rate
}

std::size_t TaskRunner::activeRuns() const {
  return static_cast<std::size_t>(
      std::count_if(runs_.begin(), runs_.end(),
                    [](const auto& r) { return !r->finished(); }));
}

void TaskRunner::onPeriod(std::uint64_t idx) {
  sweep();
  current_workload_ = workload_(idx);
  ++released_;
  runs_.push_back(std::make_unique<PipelineRun>(
      rt_, spec_, placement_, current_workload_, idx, noise_rng_,
      pipeline_config_, [this](const PeriodRecord& rec) {
        if (on_record_) {
          on_record_(rec);
        }
      }));
}

void TaskRunner::sweep() {
  std::erase_if(runs_, [](const std::unique_ptr<PipelineRun>& r) {
    return r->safeToDestroy();
  });
}

}  // namespace rtdrm::task
