#include "task/spec.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace rtdrm::task {

void TaskSpec::validate() const {
  RTDRM_ASSERT_MSG(!subtasks.empty(), "task needs at least one subtask");
  RTDRM_ASSERT_MSG(messages.size() + 1 == subtasks.size(),
                   "need exactly n-1 inter-subtask messages");
  RTDRM_ASSERT(period > SimDuration::zero());
  RTDRM_ASSERT(deadline > SimDuration::zero());
  RTDRM_ASSERT_MSG(max_period == SimDuration::zero() || max_period >= period,
                   "max_period must be >= period (or zero for inelastic)");
  for (const auto& st : subtasks) {
    RTDRM_ASSERT_MSG(st.cost.alpha_ms >= 0.0 && st.cost.beta_ms >= 0.0,
                     "negative cost coefficients");
    RTDRM_ASSERT(st.noise_sigma >= 0.0);
  }
  for (const auto& m : messages) {
    RTDRM_ASSERT(m.bytes_per_track >= 0.0);
  }
}

void ReplicaSet::insert(ProcessorId p) {
  const std::size_t word = p.value >> 6;
  if (word >= bits_.size()) {
    bits_.resize(word + 1, 0);
  }
  bits_[word] |= std::uint64_t{1} << (p.value & 63);
  nodes_.push_back(p);
}

void ReplicaSet::add(ProcessorId p) {
  RTDRM_ASSERT_MSG(!contains(p), "processor already hosts a replica");
  insert(p);
}

void ReplicaSet::removeLast() {
  RTDRM_ASSERT_MSG(nodes_.size() > 1, "cannot remove the primary replica");
  clearBit(nodes_.back());
  nodes_.pop_back();
}

void ReplicaSet::remove(ProcessorId p) {
  RTDRM_ASSERT_MSG(nodes_.size() > 1, "replica set cannot go empty");
  const auto it = std::find(nodes_.begin(), nodes_.end(), p);
  RTDRM_ASSERT_MSG(it != nodes_.end(), "no replica on that processor");
  // Removing the front entry promotes the next-oldest replica to primary.
  clearBit(p);
  nodes_.erase(it);
}

Placement::Placement(const std::vector<ProcessorId>& homes) {
  stages_.reserve(homes.size());
  for (ProcessorId h : homes) {
    stages_.emplace_back(h);
  }
}

ReplicaSet& Placement::stage(std::size_t k) {
  RTDRM_ASSERT(k < stages_.size());
  return stages_[k];
}

const ReplicaSet& Placement::stage(std::size_t k) const {
  RTDRM_ASSERT(k < stages_.size());
  return stages_[k];
}

std::size_t Placement::totalNodes() const {
  std::size_t total = 0;
  for (const auto& s : stages_) {
    total += s.size();
  }
  return total;
}

}  // namespace rtdrm::task
