// Periodic task structure (paper §3, items 1-11).
//
// A periodic task T_i = [st_1, m_1, st_2, m_2, ..., st_n] is a serial chain
// of subtasks connected by messages: st_k cannot execute before m_{k-1}
// arrives. Each period the task processes ds(T_i, c) data items ("tracks").
//
// We model the n-1 *inter-subtask* messages; the paper's trailing m_n (the
// actuation output) is not on the critical path of the measured end-to-end
// latency and is omitted (documented substitution, DESIGN.md §2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace rtdrm::task {

/// Ground-truth CPU cost of one subtask: pure service demand
/// s(d) = alpha * h^2 + beta * h milliseconds, h = d in hundreds of tracks.
///
/// This is the simulator's hidden truth; the resource manager never reads
/// it — it sees only profiled observations (latency under contention),
/// exactly as the paper's algorithms see only measured profile data.
struct SubtaskCost {
  double alpha_ms = 0.0;  ///< quadratic term (ms per hundred^2)
  double beta_ms = 0.0;   ///< linear term (ms per hundred)

  SimDuration demand(DataSize d) const {
    const double h = d.hundreds();
    const double v = alpha_ms * h * h + beta_ms * h;
    return SimDuration::millis(v > 0.0 ? v : 0.0);
  }
};

struct SubtaskSpec {
  std::string name;
  SubtaskCost cost;
  /// Whether the run-time system may replicate this subtask (paper item 6;
  /// Table 1: 2 of the 5 subtasks are replicable).
  bool replicable = false;
  /// Multiplicative lognormal noise sigma applied to each execution's
  /// demand (models data-dependent variation; 0 = deterministic).
  double noise_sigma = 0.05;
};

/// The message a subtask emits to its successor.
struct MessageSpec {
  /// Payload bytes per track carried (Table 1: track size is 80 bytes).
  double bytes_per_track = 80.0;
};

struct TaskSpec {
  std::string name = "T1";
  SimDuration period = SimDuration::seconds(1.0);
  /// Relative end-to-end deadline (Table 1: 990 ms).
  SimDuration deadline = SimDuration::millis(990.0);
  /// Elastic period bound (extension, Dwivedi arXiv:1212.3502): the
  /// manager's period-adjustment lever may dilate the release period up to
  /// this value under overload, trading rate for timeliness. zero() — the
  /// default — means inelastic (max_period == period, the paper's model);
  /// the lever never engages.
  SimDuration max_period = SimDuration::zero();
  std::vector<SubtaskSpec> subtasks;
  /// messages[k] connects subtasks[k] -> subtasks[k+1]; size = n-1.
  std::vector<MessageSpec> messages;

  std::size_t stageCount() const { return subtasks.size(); }
  /// The dilation ceiling: max_period when elastic, period itself when not.
  SimDuration effectiveMaxPeriod() const {
    return max_period > SimDuration::zero() ? max_period : period;
  }
  void validate() const;
};

/// The replica set of one subtask: an *ordered* list of processors, first
/// entry = primary. Order matters because shutdown removes the most
/// recently added replica (paper Fig. 6 step 2.1). A membership bitset is
/// kept alongside the ordered vector so contains() — the inner test of the
/// Fig.-7 candidate loop — is O(1) instead of a vector scan.
class ReplicaSet {
 public:
  explicit ReplicaSet(ProcessorId primary) { insert(primary); }

  std::size_t size() const { return nodes_.size(); }
  ProcessorId primary() const { return nodes_.front(); }
  const std::vector<ProcessorId>& nodes() const { return nodes_; }
  bool contains(ProcessorId p) const {
    const std::size_t word = p.value >> 6;
    return word < bits_.size() &&
           (bits_[word] >> (p.value & 63) & 1u) != 0;
  }

  /// Adds a replica on `p`. Pre: !contains(p).
  void add(ProcessorId p);
  /// Removes the last added replica. Pre: size() > 1 (the primary stays).
  void removeLast();
  /// Removes the replica on `p`. Pre: contains(p) and size() > 1 — the set
  /// never goes empty. Removing the primary promotes the next-oldest
  /// replica (failover: the dead primary's successor takes over).
  /// (Extension beyond the paper's Fig. 6, which only pops the last added.)
  void remove(ProcessorId p);

 private:
  void insert(ProcessorId p);
  void clearBit(ProcessorId p) {
    bits_[p.value >> 6] &= ~(std::uint64_t{1} << (p.value & 63));
  }

  std::vector<ProcessorId> nodes_;
  /// Bit i set <=> node i hosts a replica; sized to the highest id seen.
  std::vector<std::uint64_t> bits_;
};

/// Per-stage replica sets for a whole task. Copyable: the pipeline executes
/// against a snapshot so a mid-period reallocation cannot tear an instance.
class Placement {
 public:
  Placement() = default;
  /// Initial placement: subtask k primary on `homes[k]`, no replicas.
  explicit Placement(const std::vector<ProcessorId>& homes);

  std::size_t stageCount() const { return stages_.size(); }
  ReplicaSet& stage(std::size_t k);
  const ReplicaSet& stage(std::size_t k) const;

  /// Total replicas across stages (counting primaries).
  std::size_t totalNodes() const;

 private:
  std::vector<ReplicaSet> stages_;
};

}  // namespace rtdrm::task
